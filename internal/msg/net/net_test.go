package net

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/msg"
)

// part is one side of a loopback cluster living inside the test process:
// a router partitioned onto its processor slice plus its transport.
type part struct {
	r  *msg.Router
	tr *Transport
}

// loopback boots an nparts-way cluster over real TCP on 127.0.0.1, all
// parts in this one test process, every part built with the same opts.
// parts[0] listens; the rest dial.
func loopback(t *testing.T, p, nparts int, opt ...Option) []part {
	t.Helper()
	return loopbackPer(t, p, nparts, func(int) []Option { return opt })
}

// loopbackPer is loopback with per-rank options (for asymmetric-mode
// tests) and an optional hook between dials.
func loopbackPer(t *testing.T, p, nparts int, optFor func(rank int) []Option, between ...func(rank int, parts []part)) []part {
	t.Helper()
	t0, err := Listen("127.0.0.1:0", p, nparts, optFor(0)...)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	parts := make([]part, nparts)
	parts[0] = part{r: msg.NewRouter(p), tr: t0}
	parts[0].r.SetTransport(t0, HostedMap(p, nparts, 0))
	t0.Attach(parts[0].r)
	for rank := 1; rank < nparts; rank++ {
		tw, err := Dial(t0.Addr(), p, nparts, rank, optFor(rank)...)
		if err != nil {
			t.Fatalf("Dial rank %d: %v", rank, err)
		}
		parts[rank] = part{r: msg.NewRouter(p), tr: tw}
		parts[rank].r.SetTransport(tw, HostedMap(p, nparts, rank))
		tw.Attach(parts[rank].r)
		for _, f := range between {
			f(rank, parts)
		}
	}
	if err := t0.WaitPeers(10 * time.Second); err != nil {
		t.Fatalf("WaitPeers: %v", err)
	}
	t.Cleanup(func() {
		t0.Shutdown()
		for _, pt := range parts {
			pt.r.Close()
		}
		for _, pt := range parts {
			pt.tr.Wait()
		}
	})
	return parts
}

// modes is the matrix every contract test runs under: the production
// default (mesh + batching + binary codec), each knob alone, and the
// PR-9 baseline reproduction (star, synchronous flush, gob payloads).
var modes = []struct {
	name string
	opt  []Option
}{
	{"mesh+batch", nil},
	{"mesh-nobatch", []Option{WithBatch(false)}},
	{"star-batch", []Option{WithMesh(false)}},
	{"star-sync-gob", []Option{WithMesh(false), WithBatch(false), WithForceGob(true)}},
	{"mesh+batch+window", []Option{WithFlushWindow(200 * time.Microsecond)}},
}

func recvAt(t *testing.T, pt part, dst, src int, tag msg.Tag) msg.Message {
	t.Helper()
	m, err := pt.r.RecvFromTimeout(dst, src, tag, 10*time.Second)
	if err != nil {
		t.Fatalf("recv at %d from %d: %v", dst, src, err)
	}
	return m
}

// TestSendCapturesPayload pins the deep-copy-at-the-seam contract in
// every mode: the payload is serialized before Send returns, so
// mutating the source buffer afterwards (as pooled-buffer recycling
// does) must not be visible to the receiver — even when the frame is
// still sitting in a writer goroutine's queue.
func TestSendCapturesPayload(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			parts := loopback(t, 4, 2, mode.opt...)
			tag := msg.Tag{Class: msg.ClassData, Kind: 7}

			buf := []float64{1, 2, 3, 4}
			if err := parts[0].r.Send(0, 2, tag, buf); err != nil {
				t.Fatalf("Send: %v", err)
			}
			// The sender recycles the buffer the instant Send returns.
			for i := range buf {
				buf[i] = -999
			}

			m := recvAt(t, parts[1], 2, 0, tag)
			got, ok := m.Data.([]float64)
			if !ok {
				t.Fatalf("payload type %T, want []float64", m.Data)
			}
			for i, v := range got {
				if v != float64(i+1) {
					t.Fatalf("got[%d] = %v, want %d: receiver saw post-mutation bytes", i, v, i+1)
				}
			}
		})
	}
}

// TestSendCapturesNestedPayload is the same pin for a [][]float64 (the
// shape of halo slabs): inner rows must be captured too.
func TestSendCapturesNestedPayload(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			parts := loopback(t, 4, 2, mode.opt...)
			tag := msg.Tag{Class: msg.ClassData, Kind: 8}

			rows := [][]float64{{1, 2}, {3, 4}}
			if err := parts[0].r.Send(1, 3, tag, rows); err != nil {
				t.Fatalf("Send: %v", err)
			}
			rows[0][0], rows[1][1] = -1, -1

			m := recvAt(t, parts[1], 3, 1, tag)
			got := m.Data.([][]float64)
			want := [][]float64{{1, 2}, {3, 4}}
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("got[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
					}
				}
			}
		})
	}
}

// TestFIFOAcrossWire verifies the ordering half of the transport
// contract in every mode: delivery between a fixed (src, dst) pair is
// FIFO, batching or not.
func TestFIFOAcrossWire(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			parts := loopback(t, 4, 2, mode.opt...)
			tag := msg.Tag{Class: msg.ClassData, Kind: 1}

			const n = 200
			for i := 0; i < n; i++ {
				if err := parts[0].r.Send(0, 2, tag, i); err != nil {
					t.Fatalf("Send %d: %v", i, err)
				}
			}
			for i := 0; i < n; i++ {
				m := recvAt(t, parts[1], 2, 0, tag)
				if m.Data.(int) != i {
					t.Fatalf("message %d arrived carrying %v: reordered or duplicated", i, m.Data)
				}
			}
		})
	}
}

// TestWorkerToWorkerPaths exercises the worker↔worker leg in every
// mode: one hop over the mesh when enabled, two hops through the
// part-0 relay otherwise — the payload must arrive either way.
func TestWorkerToWorkerPaths(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			parts := loopback(t, 3, 3, mode.opt...) // proc i hosted by part i
			tag := msg.Tag{Class: msg.ClassData, Kind: 2}

			if err := parts[1].r.Send(1, 2, tag, "across the wire"); err != nil {
				t.Fatalf("Send: %v", err)
			}
			m := recvAt(t, parts[2], 2, 1, tag)
			if m.Data.(string) != "across the wire" {
				t.Fatalf("worker-to-worker payload = %v", m.Data)
			}

			// And the reply leg worker -> part 0.
			if err := parts[2].r.Send(2, 0, tag, 42); err != nil {
				t.Fatalf("reply Send: %v", err)
			}
			m = recvAt(t, parts[0], 0, 2, tag)
			if m.Data.(int) != 42 {
				t.Fatalf("reply payload = %v", m.Data)
			}
		})
	}
}

// TestMeshDirectLink pins the topology claim itself: with mesh on, the
// worker pair holds a direct connection (no relay through part 0); with
// mesh off, it does not.
func TestMeshDirectLink(t *testing.T) {
	hasPeer := func(pt part, rank int) bool {
		pt.tr.mu.Lock()
		defer pt.tr.mu.Unlock()
		_, ok := pt.tr.peers[rank]
		return ok
	}
	t.Run("mesh", func(t *testing.T) {
		parts := loopback(t, 3, 3)
		if !hasPeer(parts[2], 1) || !hasPeer(parts[1], 2) {
			t.Fatal("mesh enabled but workers 1 and 2 hold no direct link")
		}
	})
	t.Run("star", func(t *testing.T) {
		parts := loopback(t, 3, 3, WithMesh(false))
		if hasPeer(parts[2], 1) || hasPeer(parts[1], 2) {
			t.Fatal("mesh disabled but workers hold a direct link")
		}
	})
}

// TestMeshFIFOPerPair is the mesh contract pin the ISSUE names: three
// parts, batching enabled, 200 messages on every ordered (src, dst)
// pair concurrently — each pair must deliver in order with no loss and
// no duplication, whether the pair rides a mesh link, the star spoke,
// or the relay.
func TestMeshFIFOPerPair(t *testing.T) {
	parts := loopback(t, 3, 3)
	const n = 200

	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			src, dst := src, dst
			tag := msg.Tag{Class: msg.ClassData, Kind: 10 + 3*src + dst}
			wg.Add(2)
			go func() { // sender
				defer wg.Done()
				for i := 0; i < n; i++ {
					if err := parts[src].r.Send(src, dst, tag, i); err != nil {
						errs <- fmt.Errorf("send %d->%d #%d: %v", src, dst, i, err)
						return
					}
				}
			}()
			go func() { // receiver
				defer wg.Done()
				for i := 0; i < n; i++ {
					m, err := parts[dst].r.RecvFromTimeout(dst, src, tag, 10*time.Second)
					if err != nil {
						errs <- fmt.Errorf("recv %d->%d #%d: %v", src, dst, i, err)
						return
					}
					if m.Data.(int) != i {
						errs <- fmt.Errorf("pair %d->%d: message %d carried %v: reordered or duplicated", src, dst, i, m.Data)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStarFallbackWhenMeshDialRefused kills one worker's mesh listener
// before the directory goes out: the dial to it is refused, WaitPeers
// must still succeed, and traffic between the two workers must flow —
// over the star relay, pinned by the absence of a direct link.
func TestStarFallbackWhenMeshDialRefused(t *testing.T) {
	parts := loopbackPer(t, 3, 3,
		func(int) []Option { return nil },
		func(rank int, parts []part) {
			if rank == 1 {
				// Worker 1 advertised its mesh address in the hello; close
				// the listener so worker 2's dial is refused.
				parts[1].tr.meshLn.Close()
			}
		})

	parts[2].tr.mu.Lock()
	_, direct := parts[2].tr.peers[1]
	parts[2].tr.mu.Unlock()
	if direct {
		t.Fatal("dial to a closed listener produced a direct link")
	}

	tag := msg.Tag{Class: msg.ClassData, Kind: 3}
	if err := parts[2].r.Send(2, 1, tag, "via the relay"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m := recvAt(t, parts[1], 1, 2, tag)
	if m.Data.(string) != "via the relay" {
		t.Fatalf("fallback payload = %v", m.Data)
	}
	// The reverse direction also falls back (worker 1 never dials 2;
	// routes are independent per sender).
	if err := parts[1].r.Send(1, 2, tag, "back again"); err != nil {
		t.Fatalf("reverse Send: %v", err)
	}
	m = recvAt(t, parts[2], 2, 1, tag)
	if m.Data.(string) != "back again" {
		t.Fatalf("reverse fallback payload = %v", m.Data)
	}
}

// TestKillPropagates verifies a kill lands machine-wide in every mode:
// the hosting part's mailbox dies for real, other parts observe Down
// and drop sends to the dead processor instead of shipping frames.
func TestKillPropagates(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			parts := loopback(t, 4, 2, mode.opt...)

			if err := parts[0].tr.Kill(3); err != nil {
				t.Fatalf("Kill: %v", err)
			}
			// Origin part: synchronous remote-down record.
			if !parts[0].r.Down(3) {
				t.Fatal("origin part does not report processor 3 down")
			}
			// Hosting part: the kill notice travels the wire; receives at
			// the dead processor fail with ErrProcessorDown once it lands.
			waitDown(t, parts[1], 3)
			_, err := parts[1].r.RecvTimeout(3, func(msg.Message) bool { return true }, time.Second)
			if !errors.Is(err, msg.ErrProcessorDown) {
				t.Fatalf("recv at killed processor: %v, want ErrProcessorDown", err)
			}
			// Sends to the dead processor from the origin part are dropped
			// without error (dead peers silently eat traffic, as in-process).
			if err := parts[0].r.Send(0, 3, msg.Tag{Class: msg.ClassData, Kind: 3}, 1); err != nil {
				t.Fatalf("send to dead processor: %v, want silent drop", err)
			}
			// The living processor on the same part is unaffected.
			tag := msg.Tag{Class: msg.ClassData, Kind: 4}
			if err := parts[0].r.Send(0, 2, tag, "alive"); err != nil {
				t.Fatalf("send to living processor: %v", err)
			}
			m := recvAt(t, parts[1], 2, 0, tag)
			if m.Data.(string) != "alive" {
				t.Fatalf("living processor payload = %v", m.Data)
			}
		})
	}
}

func waitDown(t *testing.T, pt part, proc int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !pt.r.Down(proc) {
		if time.Now().After(deadline) {
			t.Fatalf("part never observed processor %d down", proc)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestKillFloodReachesAllMeshPeers pins machine-wide kill flooding on
// the mesh: a worker-originated kill of a processor hosted on a third
// part must land on every part — over the direct links and via part
// 0's re-flood — and duplicate deliveries must be harmless.
func TestKillFloodReachesAllMeshPeers(t *testing.T) {
	parts := loopback(t, 3, 3) // proc i hosted by part i

	// Worker 1 kills processor 2 (hosted on part 2): the notice travels
	// the 1->2 mesh link and the 1->0 spoke, and part 0 re-floods it.
	if err := parts[1].tr.Kill(2); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	for rank := 0; rank < 3; rank++ {
		waitDown(t, parts[rank], 2)
	}
	_, err := parts[2].r.RecvTimeout(2, func(msg.Message) bool { return true }, time.Second)
	if !errors.Is(err, msg.ErrProcessorDown) {
		t.Fatalf("recv at killed processor: %v, want ErrProcessorDown", err)
	}
	// Traffic between the survivors still flows on every path.
	tag := msg.Tag{Class: msg.ClassData, Kind: 5}
	if err := parts[1].r.Send(1, 0, tag, "still here"); err != nil {
		t.Fatalf("survivor Send: %v", err)
	}
	m := recvAt(t, parts[0], 0, 1, tag)
	if m.Data.(string) != "still here" {
		t.Fatalf("survivor payload = %v", m.Data)
	}
}

// TestPartBounds pins the contiguous split: parts cover 0..p-1 exactly
// once, in order, with sizes differing by at most one.
func TestPartBounds(t *testing.T) {
	for _, tc := range []struct{ p, nparts int }{{4, 2}, {5, 2}, {7, 3}, {3, 3}, {8, 4}} {
		next := 0
		for rank := 0; rank < tc.nparts; rank++ {
			lo, hi := PartBounds(tc.p, tc.nparts, rank)
			if lo != next {
				t.Fatalf("p=%d nparts=%d rank=%d: lo=%d, want %d", tc.p, tc.nparts, rank, lo, next)
			}
			if sz := hi - lo; sz < tc.p/tc.nparts || sz > tc.p/tc.nparts+1 {
				t.Fatalf("p=%d nparts=%d rank=%d: size %d not balanced", tc.p, tc.nparts, rank, sz)
			}
			next = hi
		}
		if next != tc.p {
			t.Fatalf("p=%d nparts=%d: parts cover %d procs", tc.p, tc.nparts, next)
		}
	}
}
