// Package net implements msg.Transport over TCP: the wire that turns
// the single-process machine into a set of cooperating OS processes
// ("parts"), each hosting a contiguous slice of the P virtual
// processors.
//
// # Topology
//
// Bootstrap is a star: part 0 listens, every other part dials it, and
// by default the star is then upgraded to a mesh. Each worker opens its
// own mesh listening socket before dialing part 0 and advertises the
// bound address in its hello; once every worker has said hello, part 0
// publishes the directory (rank -> mesh address) to all workers, and
// each worker dials every lower-ranked worker directly (higher dials
// lower, so each pair establishes exactly one connection). A worker
// reports mesh-ready to part 0 after all its outgoing dials have
// resolved — succeeded or refused — and part 0's WaitPeers returns only
// after every hello AND every mesh-ready, so all direct links exist
// before traffic starts.
//
// Worker pairs whose direct link is missing (mesh disabled, dial
// refused, or an unreachable advertised address) fall back to the PR-9
// star relay through part 0. Routes are sticky: the first send to a
// part latches direct-or-relay for that destination, so every frame of
// a (src, dst) pair follows one path forever and delivery stays FIFO —
// TCP neither drops nor duplicates, and a single path cannot reorder.
//
// # Framing and encoding
//
// Every frame is `uvarint body length | body`, body[0] the frame kind.
// Message payloads are encoded by internal/msg/wire: a typed binary
// fast path for the dominant shapes ([]float64 slabs, offset vectors,
// registered protocol structs) with gob as the self-describing
// fallback — so every concrete payload type that crosses the wire must
// either have a wire.Codec or be gob.Register'd in both processes.
// Since every part runs the same binary, package init-time
// registration keeps the two sides agreeing by construction.
//
// Send encodes the payload into a pooled buffer synchronously before
// returning, which is the deep-copy-at-the-seam contract of
// msg.Transport: the caller may recycle a pooled buffer the moment
// Send returns, and the receiver still sees the pre-mutation bytes.
// That one encode is the only copy — ownership of the encoded frame
// passes to the connection's writer goroutine (batch mode), which
// coalesces all queued frames into one flush per wakeup, turning N
// syscalls under load into ~1. With batching off, Send writes and
// flushes under the peer mutex (one syscall per frame, PR-9 style).
//
// Latency and loss are real, not modeled — the fault plane and
// SetLatency stay in-process tools.
package net

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/msg"
	"repro/internal/msg/wire"
)

func init() {
	// The builtin payload shapes of the data-parallel plane (spmd sends,
	// halo slabs, reduction vectors), registered for the gob fallback.
	// Protocol-specific envelopes are registered by their own packages.
	gob.Register([]float64(nil))
	gob.Register([][]float64(nil))
	gob.Register([]int(nil))
	gob.Register([][]int(nil))
	gob.Register(float64(0))
	gob.Register(int(0))
	gob.Register("")
	gob.Register(false)
}

// Frame kinds (body[0]).
const (
	frameHello       = 1 // worker -> part 0: rank + advertised mesh address
	frameMsg         = 2 // one routed message
	frameKill        = 3 // kill notice/command for one processor, flooded
	frameBye         = 4 // orderly shutdown: part 0 -> workers
	frameDir         = 5 // part 0 -> workers: the mesh directory
	frameMeshHello   = 6 // dialing worker -> accepting worker: my rank
	frameMeshWelcome = 7 // accepting worker -> dialing worker: ack + my rank
	frameMeshReady   = 8 // worker -> part 0: all my mesh dials resolved
)

const (
	maxFrame     = 1 << 30   // corrupt-stream guard on decoded frame lengths
	maxPooledBuf = 1 << 20   // buffers above this return to the GC, not the pool
	batchBytes   = 256 << 10 // writer flushes mid-batch past this many bytes
	meshDialWait = 10 * time.Second
	byeDrainWait = 2 * time.Second
)

// bufPool recycles frame buffers across sends and receives.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getBuf() []byte { return (*bufPool.Get().(*[]byte))[:0] }

func getBufN(n int) []byte {
	b := getBuf()
	if cap(b) < n {
		putBuf(b)
		return make([]byte, n)
	}
	return b[:n]
}

func putBuf(b []byte) {
	if b == nil || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// Options tune one part's side of the wire. The zero value of each
// knob is overridden by defaults(): production runs mesh + batching
// with the binary codec.
type Options struct {
	Mesh        bool          // upgrade the star to direct worker links
	Batch       bool          // per-peer writer goroutines that coalesce flushes
	ForceGob    bool          // route every payload through the gob fallback
	FlushWindow time.Duration // optional linger before flushing a non-full batch
	MeshAddr    string        // workers: mesh listen address (host:port, port may be 0)
}

// Option mutates Options; pass to Listen/Dial.
type Option func(*Options)

func defaults() Options {
	return Options{Mesh: true, Batch: true, MeshAddr: "127.0.0.1:0"}
}

func buildOptions(opt []Option) Options {
	o := defaults()
	for _, f := range opt {
		f(&o)
	}
	return o
}

// WithMesh enables or disables the mesh upgrade (default on).
func WithMesh(on bool) Option { return func(o *Options) { o.Mesh = on } }

// WithBatch enables or disables writer-goroutine batching (default on).
func WithBatch(on bool) Option { return func(o *Options) { o.Batch = on } }

// WithForceGob forces every payload through the gob fallback instead of
// the binary fast paths — the PR-9 encoding, kept for baselines.
func WithForceGob(on bool) Option { return func(o *Options) { o.ForceGob = on } }

// WithFlushWindow sets a linger: after writing a non-full batch the
// writer waits up to d for more frames before paying the flush syscall.
// Zero (the default) flushes as soon as the queue is empty.
func WithFlushWindow(d time.Duration) Option { return func(o *Options) { o.FlushWindow = d } }

// WithMeshAddr sets the worker's mesh listen address. The advertised
// directory entry is the bound address, so the host part must be
// reachable from the other workers. Default 127.0.0.1:0.
func WithMeshAddr(addr string) Option { return func(o *Options) { o.MeshAddr = addr } }

// outFrame is one unit of a peer's outbound queue: either an encoded
// frame whose buffer the writer now owns, or a barrier (flush the
// connection, then close the channel).
type outFrame struct {
	body    []byte
	barrier chan struct{}
}

// peer is one live connection. In batch mode a dedicated writer
// goroutine owns bw and drains q; otherwise writes happen under mu,
// one flush per frame.
type peer struct {
	rank int
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	dead atomic.Bool

	mu sync.Mutex // sync path (q == nil): serializes write+flush

	q        chan outFrame // batch path; nil in sync mode
	quit     chan struct{}
	quitOnce sync.Once
}

// newPeer builds one connection's state. batch decides the write path
// up front — q must exist before the peer is published to other
// goroutines, the writer itself starts later (startPeer), once the
// handshake frames are on the wire.
func newPeer(conn net.Conn, rank int, batch bool) *peer {
	p := &peer{
		rank: rank,
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		quit: make(chan struct{}),
	}
	if batch {
		p.q = make(chan outFrame, 256)
	}
	return p
}

// writeFrame appends the length prefix and body to the buffered writer.
// Callers own the flush.
func (p *peer) writeFrame(body []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(body)))
	if _, err := p.bw.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := p.bw.Write(body)
	return err
}

// post hands one encoded frame to the connection; ownership of body
// transfers (it is recycled or written by this side). In batch mode
// the frame is enqueued for the writer; in sync mode it is written and
// flushed before returning. A dead or closing peer eats frames
// silently — fail-stop connections behave like dead processors.
func (p *peer) post(body []byte) error {
	if p.q == nil {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.dead.Load() {
			putBuf(body)
			return nil
		}
		err := p.writeFrame(body)
		putBuf(body)
		if err == nil {
			err = p.bw.Flush()
		}
		if err != nil {
			p.dead.Store(true)
			return err
		}
		return nil
	}
	if p.dead.Load() {
		putBuf(body)
		return nil
	}
	select {
	case p.q <- outFrame{body: body}:
		return nil
	case <-p.quit:
		putBuf(body)
		return nil
	}
}

// barrier waits (bounded) until every frame enqueued before it has
// been flushed to the socket. Sync mode flushes per frame, so it is a
// no-op there.
func (p *peer) barrier(timeout time.Duration) {
	if p.q == nil {
		return
	}
	ch := make(chan struct{})
	select {
	case p.q <- outFrame{barrier: ch}:
		select {
		case <-ch:
		case <-time.After(timeout):
		case <-p.quit:
		}
	case <-p.quit:
	}
}

// writeLoop is the batch-mode writer: block for one frame, then keep
// writing until the queue runs dry (optionally lingering flushWindow
// for stragglers), then flush once. Under load this coalesces many
// frames per syscall; idle, it degenerates to write+flush per frame.
func (p *peer) writeLoop(flushWindow time.Duration) {
	var timer *time.Timer
	flush := func() {
		if !p.dead.Load() {
			if err := p.bw.Flush(); err != nil {
				p.dead.Store(true)
			}
		}
	}
	for {
		var of outFrame
		select {
		case of = <-p.q:
		case <-p.quit:
			flush()
			return
		}
		batched := 0
		for {
			if of.barrier != nil {
				flush()
				batched = 0
				close(of.barrier)
			} else {
				if !p.dead.Load() {
					if err := p.writeFrame(of.body); err != nil {
						p.dead.Store(true)
					} else {
						batched += len(of.body)
					}
				}
				putBuf(of.body)
				if batched >= batchBytes {
					flush()
					batched = 0
				}
			}
			select {
			case of = <-p.q:
				continue
			default:
			}
			if flushWindow > 0 && batched > 0 {
				if timer == nil {
					timer = time.NewTimer(flushWindow)
				} else {
					timer.Reset(flushWindow)
				}
				select {
				case of = <-p.q:
					if !timer.Stop() {
						<-timer.C
					}
					continue
				case <-timer.C:
				case <-p.quit:
					if !timer.Stop() {
						<-timer.C
					}
					flush()
					return
				}
			}
			break
		}
		flush()
	}
}

// shutdown stops the writer (if any) and closes the socket. Idempotent.
func (p *peer) shutdown() {
	p.quitOnce.Do(func() { close(p.quit) })
	p.conn.Close()
}

// Transport is the TCP implementation of msg.Transport for one part.
type Transport struct {
	p, nparts, rank int
	owner           []int // proc -> hosting part rank
	opts            Options

	router   *msg.Router
	attached chan struct{}

	ln     net.Listener // part 0 only
	meshLn net.Listener // workers with mesh enabled

	mu       sync.Mutex
	peers    map[int]*peer // part rank -> connection
	dir      []string      // part 0: rank -> advertised mesh address
	meshAcks int           // part 0: workers whose mesh dials resolved
	dirSent  bool

	routes []atomic.Pointer[peer] // sticky per-destination-part route

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	readyMu sync.Mutex
	ready   chan struct{} // part 0: closed when the machine is fully wired
}

// PartBounds returns the processor interval [lo, hi) hosted by one part
// under the contiguous even split used throughout this package.
func PartBounds(p, nparts, rank int) (lo, hi int) {
	base, extra := p/nparts, p%nparts
	lo = rank*base + min(rank, extra)
	size := base
	if rank < extra {
		size++
	}
	return lo, lo + size
}

// HostedMap returns the hosted[] vector for one part.
func HostedMap(p, nparts, rank int) []bool {
	hosted := make([]bool, p)
	lo, hi := PartBounds(p, nparts, rank)
	for i := lo; i < hi; i++ {
		hosted[i] = true
	}
	return hosted
}

func ownerMap(p, nparts int) []int {
	owner := make([]int, p)
	for rank := 0; rank < nparts; rank++ {
		lo, hi := PartBounds(p, nparts, rank)
		for i := lo; i < hi; i++ {
			owner[i] = rank
		}
	}
	return owner
}

func newTransport(p, nparts, rank int, opts Options) *Transport {
	return &Transport{
		p: p, nparts: nparts, rank: rank,
		owner:    ownerMap(p, nparts),
		opts:     opts,
		attached: make(chan struct{}),
		peers:    make(map[int]*peer),
		dir:      make([]string, nparts),
		routes:   make([]atomic.Pointer[peer], nparts),
		done:     make(chan struct{}),
		ready:    make(chan struct{}),
	}
}

// Listen starts part 0's side of the wire: a single listening socket the
// workers dial. addr may use port 0; Addr reports the bound address to
// hand to spawned workers. Call Attach once the router exists, then
// WaitPeers before starting traffic.
func Listen(addr string, p, nparts int, opt ...Option) (*Transport, error) {
	if nparts < 2 {
		return nil, fmt.Errorf("msgnet: need at least 2 parts, got %d", nparts)
	}
	t := newTransport(p, nparts, 0, buildOptions(opt))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Dial starts a worker part's side of the wire: a mesh listening socket
// (unless mesh is disabled) plus one connection to part 0.
func Dial(addr string, p, nparts, rank int, opt ...Option) (*Transport, error) {
	if rank <= 0 || rank >= nparts {
		return nil, fmt.Errorf("msgnet: worker rank %d out of range (nparts=%d)", rank, nparts)
	}
	t := newTransport(p, nparts, rank, buildOptions(opt))
	advertise := ""
	if t.opts.Mesh {
		ln, err := net.Listen("tcp", t.opts.MeshAddr)
		if err != nil {
			return nil, fmt.Errorf("msgnet: mesh listen %s: %w", t.opts.MeshAddr, err)
		}
		t.meshLn = ln
		advertise = ln.Addr().String()
		t.wg.Add(1)
		go t.meshAcceptLoop()
	}
	conn, err := net.DialTimeout("tcp", addr, 30*time.Second)
	if err != nil {
		if t.meshLn != nil {
			t.meshLn.Close()
		}
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pr := newPeer(conn, 0, t.opts.Batch)
	hello := getBuf()
	hello = append(hello, frameHello)
	hello = wire.AppendUvarint(hello, uint64(rank))
	hello = wire.AppendString(hello, advertise)
	err = rawWriteFrame(conn, hello)
	putBuf(hello)
	if err != nil {
		conn.Close()
		if t.meshLn != nil {
			t.meshLn.Close()
		}
		return nil, err
	}
	t.mu.Lock()
	t.peers[0] = pr
	t.mu.Unlock()
	t.startPeer(pr)
	t.wg.Add(1)
	go t.readLoop(0, pr)
	return t, nil
}

// rawWriteFrame writes one whole frame directly to the socket —
// handshake frames only, before the peer's writer exists.
func rawWriteFrame(conn net.Conn, body []byte) error {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(body))
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	_, err := conn.Write(buf)
	return err
}

// readRawFrame reads one length-prefixed frame body into a pooled
// buffer the caller owns.
func readRawFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("msgnet: oversized frame (%d bytes)", n)
	}
	body := getBufN(int(n))
	if _, err := io.ReadFull(br, body); err != nil {
		putBuf(body)
		return nil, err
	}
	return body, nil
}

// startPeer launches the batch writer for a fully-handshaken peer.
func (t *Transport) startPeer(pr *peer) {
	if pr.q == nil {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		pr.writeLoop(t.opts.FlushWindow)
	}()
}

// Addr returns the listening address (part 0 only).
func (t *Transport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Attach binds the transport to its router. Frames received before
// Attach wait in the TCP buffers; nothing is delivered until the router
// is in place.
func (t *Transport) Attach(r *msg.Router) {
	t.router = r
	close(t.attached)
}

// WaitPeers blocks until the machine is fully wired (part 0): every
// worker said hello and — when mesh is on — every worker reported its
// mesh dials resolved, so every direct link that will ever exist
// already does and sticky routes latch the fast path. Workers return
// immediately: their connections are established by construction.
func (t *Transport) WaitPeers(timeout time.Duration) error {
	if t.rank != 0 {
		return nil
	}
	select {
	case <-t.ready:
		return nil
	case <-t.done:
		return fmt.Errorf("msgnet: transport closed before all parts connected")
	case <-time.After(timeout):
		return fmt.Errorf("msgnet: %d part(s) not fully wired within %v", t.missingPeers(), timeout)
	}
}

func (t *Transport) missingPeers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nparts - 1 - len(t.peers)
}

func (t *Transport) closeReady() {
	t.readyMu.Lock()
	select {
	case <-t.ready:
	default:
		close(t.ready)
	}
	t.readyMu.Unlock()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		t.wg.Add(1)
		go t.handshake(conn)
	}
}

// handshake is part 0's accept path: read the worker's hello, register
// the peer, and — once everyone is here — either publish the mesh
// directory or (mesh off) declare the machine wired.
func (t *Transport) handshake(conn net.Conn) {
	defer t.wg.Done()
	pr := newPeer(conn, -1, t.opts.Batch)
	body, err := readRawFrame(pr.br)
	if err != nil {
		conn.Close()
		return
	}
	rank, meshAddr, ok := parseHello(body)
	putBuf(body)
	if !ok || rank <= 0 || rank >= t.nparts {
		conn.Close()
		return
	}
	pr.rank = rank
	t.mu.Lock()
	if _, dup := t.peers[rank]; dup {
		t.mu.Unlock()
		conn.Close()
		return
	}
	t.peers[rank] = pr
	t.dir[rank] = meshAddr
	allHello := len(t.peers) == t.nparts-1
	sendDir := allHello && t.opts.Mesh && !t.dirSent
	if sendDir {
		t.dirSent = true
	}
	var prs []*peer
	if sendDir {
		prs = t.peerList()
	}
	t.mu.Unlock()
	t.startPeer(pr)
	t.wg.Add(1)
	go t.readLoop(rank, pr)
	if sendDir {
		dirBody := t.dirFrame()
		for _, wp := range prs {
			b := getBuf()
			b = append(b, dirBody...)
			wp.post(b)
		}
		putBuf(dirBody)
	} else if allHello && !t.opts.Mesh {
		t.closeReady()
	}
}

func parseHello(body []byte) (rank int, meshAddr string, ok bool) {
	if len(body) == 0 || body[0] != frameHello {
		return 0, "", false
	}
	r, rest, err := wire.ReadUvarint(body[1:])
	if err != nil {
		return 0, "", false
	}
	addr, _, err := wire.ReadString(rest)
	if err != nil {
		return 0, "", false
	}
	return int(r), addr, true
}

// dirFrame encodes the mesh directory. Caller holds no locks; dir is
// write-once-per-rank before dirSent flips, so reading it unlocked
// after the flip is safe.
func (t *Transport) dirFrame() []byte {
	b := getBuf()
	b = append(b, frameDir)
	b = wire.AppendUvarint(b, uint64(t.nparts))
	for _, addr := range t.dir {
		b = wire.AppendString(b, addr)
	}
	return b
}

func (t *Transport) peerList() []*peer {
	prs := make([]*peer, 0, len(t.peers))
	for _, pr := range t.peers {
		prs = append(prs, pr)
	}
	return prs
}

// meshAcceptLoop is a worker's side of incoming mesh dials (from
// higher-ranked workers).
func (t *Transport) meshAcceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.meshLn.Accept()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		t.wg.Add(1)
		go t.meshHandshakeIn(conn)
	}
}

func (t *Transport) meshHandshakeIn(conn net.Conn) {
	defer t.wg.Done()
	pr := newPeer(conn, -1, t.opts.Batch)
	conn.SetReadDeadline(time.Now().Add(meshDialWait))
	body, err := readRawFrame(pr.br)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return
	}
	rank, ok := parseRankFrame(body, frameMeshHello)
	putBuf(body)
	if !ok || rank <= 0 || rank >= t.nparts || rank == t.rank {
		conn.Close()
		return
	}
	pr.rank = rank
	t.mu.Lock()
	if _, dup := t.peers[rank]; dup {
		t.mu.Unlock()
		conn.Close()
		return
	}
	t.peers[rank] = pr
	t.mu.Unlock()
	welcome := getBuf()
	welcome = append(welcome, frameMeshWelcome)
	welcome = wire.AppendUvarint(welcome, uint64(t.rank))
	err = rawWriteFrame(conn, welcome)
	putBuf(welcome)
	if err != nil {
		pr.dead.Store(true)
		conn.Close()
		return
	}
	t.startPeer(pr)
	t.wg.Add(1)
	go t.readLoop(rank, pr)
}

// meshDialAll dials every lower-ranked worker in the directory, then
// reports mesh-ready to part 0. A failed or refused dial is not an
// error: that pair simply keeps the star relay.
func (t *Transport) meshDialAll(dir []string) {
	defer t.wg.Done()
	for r := 1; r < t.rank; r++ {
		if r < len(dir) && dir[r] != "" {
			t.meshDial(r, dir[r])
		}
	}
	t.mu.Lock()
	pr := t.peers[0]
	t.mu.Unlock()
	if pr != nil {
		b := getBuf()
		b = append(b, frameMeshReady)
		b = wire.AppendUvarint(b, uint64(t.rank))
		pr.post(b)
	}
}

func (t *Transport) meshDial(rank int, addr string) {
	conn, err := net.DialTimeout("tcp", addr, meshDialWait)
	if err != nil {
		return // star fallback for this pair
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pr := newPeer(conn, rank, t.opts.Batch)
	hello := getBuf()
	hello = append(hello, frameMeshHello)
	hello = wire.AppendUvarint(hello, uint64(t.rank))
	err = rawWriteFrame(conn, hello)
	putBuf(hello)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Now().Add(meshDialWait))
	body, err := readRawFrame(pr.br)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return
	}
	from, ok := parseRankFrame(body, frameMeshWelcome)
	putBuf(body)
	if !ok || from != rank {
		conn.Close()
		return
	}
	t.mu.Lock()
	if _, dup := t.peers[rank]; dup {
		t.mu.Unlock()
		conn.Close()
		return
	}
	t.peers[rank] = pr
	t.mu.Unlock()
	t.startPeer(pr)
	t.wg.Add(1)
	go t.readLoop(rank, pr)
}

func parseRankFrame(body []byte, kind byte) (rank int, ok bool) {
	if len(body) == 0 || body[0] != kind {
		return 0, false
	}
	r, _, err := wire.ReadUvarint(body[1:])
	if err != nil {
		return 0, false
	}
	return int(r), true
}

func (t *Transport) readLoop(from int, pr *peer) {
	defer t.wg.Done()
	<-t.attached
	for {
		body, err := readRawFrame(pr.br)
		if err != nil {
			pr.dead.Store(true)
			if t.rank != 0 && from == 0 {
				// Part 0 went away: the machine is over for this worker.
				t.Close()
			}
			return
		}
		t.handleFrame(from, body)
	}
}

// handleFrame dispatches one received frame body. Ownership of body is
// taken: it is recycled here unless forwarded verbatim.
func (t *Transport) handleFrame(from int, body []byte) {
	if len(body) == 0 {
		putBuf(body)
		return
	}
	switch body[0] {
	case frameMsg:
		t.handleMsg(body)
	case frameKill:
		proc, ok := parseRankFrame(body, frameKill)
		putBuf(body)
		if !ok {
			return
		}
		t.applyKill(proc)
		if t.rank == 0 {
			// Re-flood the notice to every other part; receivers do not
			// re-forward, and duplicate kills are idempotent, so the
			// mesh's cycles are harmless.
			t.mu.Lock()
			prs := make([]*peer, 0, len(t.peers))
			for rank, pr := range t.peers {
				if rank != from {
					prs = append(prs, pr)
				}
			}
			t.mu.Unlock()
			for _, pr := range prs {
				b := getBuf()
				b = append(b, frameKill)
				b = wire.AppendUvarint(b, uint64(proc))
				pr.post(b)
			}
		}
	case frameDir:
		addrs, ok := parseDir(body, t.nparts)
		putBuf(body)
		if !ok || t.rank == 0 {
			return
		}
		t.wg.Add(1)
		go t.meshDialAll(addrs)
	case frameMeshReady:
		putBuf(body)
		if t.rank != 0 {
			return
		}
		t.mu.Lock()
		t.meshAcks++
		wired := t.meshAcks >= t.nparts-1 && len(t.peers) == t.nparts-1
		t.mu.Unlock()
		if wired {
			t.closeReady()
		}
	case frameBye:
		putBuf(body)
		t.Close()
	default:
		putBuf(body)
	}
}

func parseDir(body []byte, nparts int) ([]string, bool) {
	n, rest, err := wire.ReadUvarint(body[1:])
	if err != nil || int(n) != nparts {
		return nil, false
	}
	addrs := make([]string, nparts)
	for i := range addrs {
		addrs[i], rest, err = wire.ReadString(rest)
		if err != nil {
			return nil, false
		}
	}
	return addrs, true
}

// handleMsg delivers or relays one message frame. The relay leg (part 0,
// destination hosted elsewhere) forwards the raw bytes without decoding
// the payload — the star costs part 0 two copies, never two codecs.
func (t *Transport) handleMsg(body []byte) {
	b := body[1:]
	src64, b, err := wire.ReadUvarint(b)
	if err != nil {
		putBuf(body)
		return
	}
	dst64, b, err := wire.ReadUvarint(b)
	if err != nil {
		putBuf(body)
		return
	}
	src, dst := int(src64), int(dst64)
	if dst < 0 || dst >= t.p {
		putBuf(body)
		return
	}
	if t.owner[dst] != t.rank {
		if t.rank == 0 {
			// Relay leg of the star fallback: forward verbatim.
			t.mu.Lock()
			pr := t.peers[t.owner[dst]]
			t.mu.Unlock()
			if pr != nil {
				pr.post(body) // ownership transfers
				return
			}
		}
		putBuf(body)
		return
	}
	if len(b) == 0 {
		putBuf(body)
		return
	}
	class := b[0]
	call, b, err := wire.ReadUvarint(b[1:])
	if err != nil {
		putBuf(body)
		return
	}
	kind, b, err := wire.ReadInt(b)
	if err != nil {
		putBuf(body)
		return
	}
	data, _, err := wire.ReadAny(b)
	putBuf(body)
	if err != nil {
		return
	}
	t.router.Inject(msg.Message{
		Src: src, Dst: dst,
		Tag:  msg.Tag{Class: msg.Class(class), Call: call, Kind: kind},
		Data: data,
	})
}

// applyKill lands one kill on this part: the hosting part kills the
// mailbox for real, everyone else records the death for Router.Down.
func (t *Transport) applyKill(proc int) {
	if proc < 0 || proc >= t.p {
		return
	}
	if t.owner[proc] == t.rank {
		t.router.KillProcessor(proc)
	} else {
		t.router.MarkRemoteDown(proc)
	}
}

// Kill fail-stops processor proc machine-wide: it is applied locally
// and flooded on every connection this part has — mesh links reach
// worker peers in one hop, and part 0 re-floods to anyone the origin
// could not reach directly. Duplicates are idempotent by construction.
func (t *Transport) Kill(proc int) error {
	if proc < 0 || proc >= t.p {
		return fmt.Errorf("msgnet: kill %d out of range (P=%d)", proc, t.p)
	}
	t.applyKill(proc)
	t.mu.Lock()
	prs := t.peerList()
	t.mu.Unlock()
	for _, pr := range prs {
		b := getBuf()
		b = append(b, frameKill)
		b = wire.AppendUvarint(b, uint64(proc))
		if err := pr.post(b); err != nil {
			return err
		}
	}
	return nil
}

// route picks the connection carrying traffic to a destination part:
// the direct mesh link when one exists, otherwise the star relay
// through part 0. The choice latches on first use so every frame of a
// pair follows one path forever (FIFO).
func (t *Transport) route(target int) *peer {
	if pr := t.routes[target].Load(); pr != nil {
		return pr
	}
	t.mu.Lock()
	pr := t.peers[target]
	if pr == nil && t.rank != 0 && target != 0 {
		pr = t.peers[0]
	}
	t.mu.Unlock()
	if pr == nil {
		return nil
	}
	if !t.routes[target].CompareAndSwap(nil, pr) {
		return t.routes[target].Load()
	}
	return pr
}

// Send implements msg.Transport: encode one message into a pooled
// frame (the copy-at-the-seam — the payload is captured before Send
// returns) and hand it to the route's connection.
func (t *Transport) Send(m msg.Message) error {
	select {
	case <-t.done:
		return fmt.Errorf("msgnet: send %d -> %d: %w", m.Src, m.Dst, msg.ErrClosed)
	default:
	}
	if m.Dst < 0 || m.Dst >= t.p {
		return fmt.Errorf("msgnet: send to processor %d out of range (P=%d)", m.Dst, t.p)
	}
	pr := t.route(t.owner[m.Dst])
	if pr == nil {
		return fmt.Errorf("msgnet: no connection toward part %d (dst processor %d)", t.owner[m.Dst], m.Dst)
	}
	body := getBuf()
	body = append(body, frameMsg)
	body = wire.AppendUvarint(body, uint64(m.Src))
	body = wire.AppendUvarint(body, uint64(m.Dst))
	body = append(body, byte(m.Tag.Class))
	body = wire.AppendUvarint(body, m.Tag.Call)
	body = wire.AppendInt(body, m.Tag.Kind)
	var err error
	body, err = wire.AppendAny(body, m.Data, t.opts.ForceGob)
	if err != nil {
		putBuf(body)
		return fmt.Errorf("msgnet: encode %d -> %d: %w", m.Src, m.Dst, err)
	}
	if err := pr.post(body); err != nil {
		select {
		case <-t.done:
			return fmt.Errorf("msgnet: send %d -> %d: %w", m.Src, m.Dst, msg.ErrClosed)
		default:
		}
		return err
	}
	return nil
}

// Shutdown performs an orderly machine-wide stop from part 0: every
// worker receives a bye frame (releasing its Wait), the writers drain,
// and then the connections close. On workers it is identical to Close.
func (t *Transport) Shutdown() {
	if t.rank == 0 {
		t.mu.Lock()
		prs := t.peerList()
		t.mu.Unlock()
		for _, pr := range prs {
			b := getBuf()
			b = append(b, frameBye)
			pr.post(b)
		}
		for _, pr := range prs {
			pr.barrier(byeDrainWait)
		}
	}
	t.Close()
}

// Close implements msg.Transport: tear down all listeners, writers and
// connections. Idempotent.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		if t.ln != nil {
			t.ln.Close()
		}
		if t.meshLn != nil {
			t.meshLn.Close()
		}
		t.mu.Lock()
		prs := t.peerList()
		t.mu.Unlock()
		for _, pr := range prs {
			pr.shutdown()
		}
	})
	return nil
}

// Done returns a channel closed when the transport has shut down (bye
// frame, lost connection to part 0, or Close).
func (t *Transport) Done() <-chan struct{} { return t.done }

// Wait blocks until the transport has shut down — the worker part's
// main loop.
func (t *Transport) Wait() { <-t.done }
