// Package net implements msg.Transport over gob-encoded TCP: the wire
// that turns the single-process machine into a set of cooperating OS
// processes ("parts"), each hosting a contiguous slice of the P virtual
// processors.
//
// Topology is a star: part 0 listens, every other part dials it, and
// frames between two worker parts are relayed through part 0. One TCP
// connection per worker keeps the port story trivial (one listening
// socket for the whole machine, so spawned workers need only part 0's
// address) and preserves the mailbox ordering contract: delivery
// between a fixed (src, dst) pair stays FIFO because every frame of
// that pair follows the same single path, and TCP neither drops nor
// duplicates. Latency and loss are real, not modeled — the fault plane
// and SetLatency stay in-process tools.
//
// Payload encoding is gob with interface-typed data: every concrete
// payload type that crosses the wire must be registered (gob.Register)
// in both processes. Since every part runs the same binary, package
// init-time registration (this package registers the builtin slice
// payloads; arraymgr and dcall register their envelope structs) keeps
// the two sides agreeing by construction. Send gob-encodes the payload
// synchronously before returning, which is the deep-copy-at-the-seam
// contract of msg.Transport: the caller may recycle a pooled buffer the
// moment Send returns, and the receiver still sees the pre-mutation
// bytes.
package net

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/msg"
)

func init() {
	// The builtin payload shapes of the data-parallel plane (spmd sends,
	// halo slabs, reduction vectors). Protocol-specific envelopes are
	// registered by their own packages.
	gob.Register([]float64(nil))
	gob.Register([][]float64(nil))
	gob.Register([]int(nil))
	gob.Register([][]int(nil))
	gob.Register(float64(0))
	gob.Register(int(0))
	gob.Register("")
	gob.Register(false)
}

// Frame kinds.
const (
	frameHello = iota + 1 // worker -> part 0: here is my rank
	frameMsg              // one routed message
	frameKill             // kill notice/command for one processor, flooded
	frameBye              // orderly shutdown: part 0 -> workers
)

// frame is the unit of the wire protocol. Exported fields only: gob.
type frame struct {
	Kind int
	Rank int // frameHello: sender's part rank
	Proc int // frameKill: the killed processor
	// frameMsg fields: the msg.Message, flattened.
	Src, Dst int
	Class    uint8
	Call     uint64
	MsgKind  int
	Data     any
}

// peer is one live connection with a serialized gob encoder. Encoding
// under the lock is what makes Transport.Send capture payloads before
// returning.
type peer struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder
}

func newPeer(conn net.Conn) *peer {
	bw := bufio.NewWriter(conn)
	return &peer{conn: conn, bw: bw, enc: gob.NewEncoder(bw)}
}

func (p *peer) send(f *frame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.enc.Encode(f); err != nil {
		return err
	}
	return p.bw.Flush()
}

// Transport is the gob/TCP implementation of msg.Transport for one part.
type Transport struct {
	p, nparts, rank int
	owner           []int // proc -> hosting part rank

	router   *msg.Router
	attached chan struct{}

	ln net.Listener // part 0 only

	mu    sync.Mutex
	peers map[int]*peer // part rank -> connection (workers: only rank 0)

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	readyMu sync.Mutex
	ready   chan struct{} // part 0: closed when all workers said hello
}

// PartBounds returns the processor interval [lo, hi) hosted by one part
// under the contiguous even split used throughout this package.
func PartBounds(p, nparts, rank int) (lo, hi int) {
	base, extra := p/nparts, p%nparts
	lo = rank*base + min(rank, extra)
	size := base
	if rank < extra {
		size++
	}
	return lo, lo + size
}

// HostedMap returns the hosted[] vector for one part.
func HostedMap(p, nparts, rank int) []bool {
	hosted := make([]bool, p)
	lo, hi := PartBounds(p, nparts, rank)
	for i := lo; i < hi; i++ {
		hosted[i] = true
	}
	return hosted
}

func ownerMap(p, nparts int) []int {
	owner := make([]int, p)
	for rank := 0; rank < nparts; rank++ {
		lo, hi := PartBounds(p, nparts, rank)
		for i := lo; i < hi; i++ {
			owner[i] = rank
		}
	}
	return owner
}

func newTransport(p, nparts, rank int) *Transport {
	return &Transport{
		p: p, nparts: nparts, rank: rank,
		owner:    ownerMap(p, nparts),
		attached: make(chan struct{}),
		peers:    make(map[int]*peer),
		done:     make(chan struct{}),
		ready:    make(chan struct{}),
	}
}

// Listen starts part 0's side of the wire: a single listening socket the
// workers dial. addr may use port 0; Addr reports the bound address to
// hand to spawned workers. Call Attach once the router exists, then
// WaitPeers before starting traffic.
func Listen(addr string, p, nparts int) (*Transport, error) {
	if nparts < 2 {
		return nil, fmt.Errorf("msgnet: need at least 2 parts, got %d", nparts)
	}
	t := newTransport(p, nparts, 0)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Dial starts a worker part's side of the wire: one connection to part 0.
func Dial(addr string, p, nparts, rank int) (*Transport, error) {
	if rank <= 0 || rank >= nparts {
		return nil, fmt.Errorf("msgnet: worker rank %d out of range (nparts=%d)", rank, nparts)
	}
	t := newTransport(p, nparts, rank)
	conn, err := net.DialTimeout("tcp", addr, 30*time.Second)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pr := newPeer(conn)
	if err := pr.send(&frame{Kind: frameHello, Rank: rank}); err != nil {
		conn.Close()
		return nil, err
	}
	t.peers[0] = pr
	t.wg.Add(1)
	go t.readLoop(0, pr)
	return t, nil
}

// Addr returns the listening address (part 0 only).
func (t *Transport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Attach binds the transport to its router. Frames received before
// Attach wait in the TCP buffers; nothing is delivered until the router
// is in place.
func (t *Transport) Attach(r *msg.Router) {
	t.router = r
	close(t.attached)
}

// WaitPeers blocks until every worker part has said hello (part 0), or
// until the timeout. Workers return immediately: their single peer is
// connected by construction.
func (t *Transport) WaitPeers(timeout time.Duration) error {
	if t.rank != 0 {
		return nil
	}
	select {
	case <-t.ready:
		return nil
	case <-t.done:
		return fmt.Errorf("msgnet: transport closed before all parts connected")
	case <-time.After(timeout):
		return fmt.Errorf("msgnet: %d part(s) did not connect within %v", t.missingPeers(), timeout)
	}
}

func (t *Transport) missingPeers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nparts - 1 - len(t.peers)
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		t.wg.Add(1)
		go t.handshake(conn)
	}
}

func (t *Transport) handshake(conn net.Conn) {
	defer t.wg.Done()
	dec := gob.NewDecoder(conn)
	var hello frame
	if err := dec.Decode(&hello); err != nil || hello.Kind != frameHello ||
		hello.Rank <= 0 || hello.Rank >= t.nparts {
		conn.Close()
		return
	}
	pr := newPeer(conn)
	t.mu.Lock()
	if _, dup := t.peers[hello.Rank]; dup {
		t.mu.Unlock()
		conn.Close()
		return
	}
	t.peers[hello.Rank] = pr
	complete := len(t.peers) == t.nparts-1
	t.mu.Unlock()
	if complete {
		t.readyMu.Lock()
		select {
		case <-t.ready:
		default:
			close(t.ready)
		}
		t.readyMu.Unlock()
	}
	t.wg.Add(1)
	go t.readLoopDec(hello.Rank, pr, dec)
}

func (t *Transport) readLoop(rank int, pr *peer) {
	t.readLoopDec(rank, pr, gob.NewDecoder(bufio.NewReader(pr.conn)))
}

func (t *Transport) readLoopDec(rank int, pr *peer, dec *gob.Decoder) {
	defer t.wg.Done()
	<-t.attached
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			if t.rank != 0 && (errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)) {
				// Part 0 went away: the machine is over for this worker.
				t.Close()
			}
			return
		}
		t.handleFrame(rank, &f)
	}
}

func (t *Transport) handleFrame(from int, f *frame) {
	switch f.Kind {
	case frameMsg:
		if f.Dst < 0 || f.Dst >= t.p {
			return
		}
		if t.rank == 0 && t.owner[f.Dst] != 0 {
			// Relay leg of the star: forward verbatim to the owner part.
			t.forward(t.owner[f.Dst], f)
			return
		}
		t.router.Inject(msg.Message{
			Src: f.Src, Dst: f.Dst,
			Tag:  msg.Tag{Class: msg.Class(f.Class), Call: f.Call, Kind: f.MsgKind},
			Data: f.Data,
		})
	case frameKill:
		t.applyKill(f.Proc)
		if t.rank == 0 {
			// Flood the notice to every other part; the star has no cycles.
			t.mu.Lock()
			prs := make([]*peer, 0, len(t.peers))
			for rank, pr := range t.peers {
				if rank != from {
					prs = append(prs, pr)
				}
			}
			t.mu.Unlock()
			for _, pr := range prs {
				pr.send(f)
			}
		}
	case frameBye:
		t.Close()
	}
}

func (t *Transport) forward(rank int, f *frame) {
	t.mu.Lock()
	pr := t.peers[rank]
	t.mu.Unlock()
	if pr != nil {
		pr.send(f)
	}
}

// applyKill lands one kill on this part: the hosting part kills the
// mailbox for real, everyone else records the death for Router.Down.
func (t *Transport) applyKill(proc int) {
	if proc < 0 || proc >= t.p {
		return
	}
	if t.owner[proc] == t.rank {
		t.router.KillProcessor(proc)
	} else {
		t.router.MarkRemoteDown(proc)
	}
}

// Kill fail-stops processor proc machine-wide: it is applied locally and
// flooded to every part, wherever proc is hosted. The caller can await
// Router.Down(proc) turning true for confirmation on this part.
func (t *Transport) Kill(proc int) error {
	if proc < 0 || proc >= t.p {
		return fmt.Errorf("msgnet: kill %d out of range (P=%d)", proc, t.p)
	}
	t.applyKill(proc)
	f := &frame{Kind: frameKill, Proc: proc}
	t.mu.Lock()
	prs := make([]*peer, 0, len(t.peers))
	for _, pr := range t.peers {
		prs = append(prs, pr)
	}
	t.mu.Unlock()
	for _, pr := range prs {
		if err := pr.send(f); err != nil {
			return err
		}
	}
	return nil
}

// Send implements msg.Transport: route one message toward the part
// hosting its destination. Workers send everything through part 0,
// which relays worker-to-worker traffic. The payload is gob-encoded
// before Send returns (see the package comment).
func (t *Transport) Send(m msg.Message) error {
	select {
	case <-t.done:
		return fmt.Errorf("msgnet: send %d -> %d: %w", m.Src, m.Dst, msg.ErrClosed)
	default:
	}
	target := 0
	if t.rank == 0 {
		target = t.owner[m.Dst]
	}
	t.mu.Lock()
	pr := t.peers[target]
	t.mu.Unlock()
	if pr == nil {
		return fmt.Errorf("msgnet: no connection to part %d (dst processor %d)", target, m.Dst)
	}
	err := pr.send(&frame{
		Kind: frameMsg,
		Src:  m.Src, Dst: m.Dst,
		Class: uint8(m.Tag.Class), Call: m.Tag.Call, MsgKind: m.Tag.Kind,
		Data: m.Data,
	})
	if err != nil {
		select {
		case <-t.done:
			return fmt.Errorf("msgnet: send %d -> %d: %w", m.Src, m.Dst, msg.ErrClosed)
		default:
		}
		return err
	}
	return nil
}

// Shutdown performs an orderly machine-wide stop from part 0: every
// worker receives a bye frame (releasing its Wait) before the
// connections close. On workers it is identical to Close.
func (t *Transport) Shutdown() {
	if t.rank == 0 {
		t.mu.Lock()
		prs := make([]*peer, 0, len(t.peers))
		for _, pr := range t.peers {
			prs = append(prs, pr)
		}
		t.mu.Unlock()
		for _, pr := range prs {
			pr.send(&frame{Kind: frameBye})
		}
	}
	t.Close()
}

// Close implements msg.Transport: tear down all connections. Idempotent.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		if t.ln != nil {
			t.ln.Close()
		}
		t.mu.Lock()
		for _, pr := range t.peers {
			pr.conn.Close()
		}
		t.mu.Unlock()
	})
	return nil
}

// Done returns a channel closed when the transport has shut down (bye
// frame, lost connection to part 0, or Close).
func (t *Transport) Done() <-chan struct{} { return t.done }

// Wait blocks until the transport has shut down — the worker part's
// main loop.
func (t *Transport) Wait() { <-t.done }
