// Fault injection: a deterministic, seeded plane that perturbs message
// delivery so the recovery machinery above the router (timeouts, retry,
// dedup) can be exercised in-process before a real transport exists.
//
// The model is the classic unreliable-datagram one: a message may be
// dropped, duplicated, delayed by a bounded random jitter, or delivered
// out of order; a killed processor's mailbox discards everything sent to
// it and wakes its receivers with ErrProcessorDown. Replies inside the
// array manager ride in-process channels, so only the request direction
// is lossy — which is exactly the asymmetry retransmission protocols are
// built around.
package msg

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultRule gives the per-message fault probabilities and delay bound for
// one (src, dst) direction. Zero value = reliable delivery.
type FaultRule struct {
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Dup is the probability a second copy of the message is enqueued
	// (with its own independently drawn jitter).
	Dup float64
	// Jitter adds a uniform random extra delay in [0, Jitter) to each
	// delivered copy, on top of the router's SetLatency hop.
	Jitter time.Duration
	// Reorder is the probability a delivered message is enqueued ahead
	// of the message queued just before it (a one-slot swap, which under
	// selective receive is enough to break FIFO between a pair).
	Reorder float64
}

func (r FaultRule) active() bool {
	return r.Drop > 0 || r.Dup > 0 || r.Jitter > 0 || r.Reorder > 0
}

// FaultPlan is a seeded set of fault rules. Rule applies to every
// (src, dst) pair unless Pairs carries an override for that pair.
// Install with Router.SetFaultPlan before traffic starts; the plan is
// read-only once installed.
type FaultPlan struct {
	Seed  int64
	Rule  FaultRule
	Pairs map[[2]int]FaultRule
}

func (p *FaultPlan) rule(src, dst int) FaultRule {
	if p.Pairs != nil {
		if r, ok := p.Pairs[[2]int{src, dst}]; ok {
			return r
		}
	}
	return p.Rule
}

// faultState pairs an installed plan with its seeded source. The rng is
// shared by all senders under a mutex: draws are reproducible for a fixed
// send interleaving (single-coordinator workloads replay exactly).
type faultState struct {
	mu   sync.Mutex
	plan *FaultPlan
	rng  *rand.Rand
}

// FaultStats counts the faults the router has injected since creation.
type FaultStats struct {
	Dropped     uint64 // messages discarded by a Drop rule
	Duplicated  uint64 // extra copies enqueued by a Dup rule
	Reordered   uint64 // messages enqueued out of order by a Reorder rule
	DownDropped uint64 // messages discarded because the destination was killed
}

type faultCounters struct {
	dropped     atomic.Uint64
	duplicated  atomic.Uint64
	reordered   atomic.Uint64
	downDropped atomic.Uint64
}

// SetFaultPlan installs (or, with nil, removes) a fault plan. Install it
// before traffic starts: the pooled-buffer fast paths above the router
// check Faulty once per call, not per message.
func (r *Router) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		r.fault.Store(nil)
		return
	}
	r.fault.Store(&faultState{plan: p, rng: rand.New(rand.NewSource(p.Seed))})
}

// Faulty reports whether a fault plan is installed. Layers that recycle
// message payloads through pools must stop doing so under an active plan
// (a duplicated delivery aliases the pooled object).
func (r *Router) Faulty() bool { return r.fault.Load() != nil }

// FaultStats returns the injected-fault counters.
func (r *Router) FaultStats() FaultStats {
	return FaultStats{
		Dropped:     r.stats.dropped.Load(),
		Duplicated:  r.stats.duplicated.Load(),
		Reordered:   r.stats.reordered.Load(),
		DownDropped: r.stats.downDropped.Load(),
	}
}

// KillProcessor marks processor p dead mid-call: its queued messages are
// discarded, its blocked and future receives return ErrProcessorDown, and
// messages sent to it are silently dropped (a dead peer cannot nack).
// Peers discover the death by timeout plus Router.Down.
func (r *Router) KillProcessor(p int) error {
	if p < 0 || p >= len(r.boxes) {
		return fmt.Errorf("%w: kill %d (P=%d)", ErrBadProcessor, p, len(r.boxes))
	}
	r.boxes[p].kill()
	return nil
}

// Down reports whether processor p has been killed. Out-of-range p
// reports false. For a processor hosted by another OS process it
// reports the propagated kill notices recorded by MarkRemoteDown.
func (r *Router) Down(p int) bool {
	if p < 0 || p >= len(r.boxes) {
		return false
	}
	if pt := r.part.Load(); pt != nil && !pt.hosted[p] {
		return pt.remoteDown[p].Load()
	}
	return r.boxes[p].isDown()
}

// sendFaulty applies the plan's rule for (src, dst) to one message and
// enqueues the surviving copies.
func (r *Router) sendFaulty(fs *faultState, box *mailbox, m Message) error {
	rule := fs.plan.rule(m.Src, m.Dst)
	var drop, dup, reorder bool
	var j1, j2 time.Duration
	if rule.active() {
		fs.mu.Lock()
		if rule.Drop > 0 {
			drop = fs.rng.Float64() < rule.Drop
		}
		if rule.Dup > 0 {
			dup = fs.rng.Float64() < rule.Dup
		}
		if rule.Reorder > 0 {
			reorder = fs.rng.Float64() < rule.Reorder
		}
		if rule.Jitter > 0 {
			j1 = time.Duration(fs.rng.Int63n(int64(rule.Jitter)))
			if dup {
				j2 = time.Duration(fs.rng.Int63n(int64(rule.Jitter)))
			}
		}
		fs.mu.Unlock()
	}
	if drop {
		r.stats.dropped.Add(1)
		return nil
	}
	if err := r.deliver(box, m, j1, reorder); err != nil {
		return err
	}
	if dup {
		r.stats.duplicated.Add(1)
		return r.deliver(box, m, j2, false)
	}
	return nil
}

// deliver enqueues one copy with extra jitter delay on top of the base
// latency already stamped into m.readyAt.
func (r *Router) deliver(box *mailbox, m Message, jitter time.Duration, reorder bool) error {
	if jitter > 0 {
		if m.readyAt.IsZero() {
			m.readyAt = time.Now()
		}
		m.readyAt = m.readyAt.Add(jitter)
	}
	stored, swapped, err := box.put(m, reorder)
	if err != nil {
		return err
	}
	if !stored {
		r.stats.downDropped.Add(1)
		return nil
	}
	r.sent.Add(1)
	if swapped {
		r.stats.reordered.Add(1)
	}
	return nil
}
