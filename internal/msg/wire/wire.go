// Package wire implements the hot-path binary payload codec of the TCP
// transport: a hand-rolled, length-delimited encoding for the payload
// shapes that dominate the data plane ([]float64 slabs, []byte, []int
// offset vectors, nested slabs, the scalar types), a registry through
// which protocol packages install codecs for their own envelope structs
// (arraymgr's wire request/reply/ack), and a gob fallback that keeps
// every other registered type shippable.
//
// Why not gob everywhere: gob prices every byte with reflection and,
// used one encoder per frame (required once frames are relayed and
// batched as raw bytes), re-sends type descriptors on every message.
// E29 measured the resulting wire at 5-8x the in-process switch with
// most of the cost per crossing, not per byte. The codec here writes a
// one-byte type code and then raw little-endian data, so a []float64
// slab costs a memcpy-shaped loop and nothing else; decoded values are
// always fresh heap (the deep-copy-at-the-seam contract holds on the
// receive side by construction).
//
// Encoding conventions:
//   - integers travel as uvarint (counts, ids) or zigzag varint (signed
//     values);
//   - slices are length-prefixed, and a length of zero decodes as nil —
//     the same empty-to-nil collapse gob performs, so a payload decodes
//     to exactly the value the PR-9 gob wire would have delivered and
//     the codec-vs-gob equivalence fuzz holds field for field;
//   - every Read* consumes exactly the bytes the matching Append* wrote
//     and returns the remainder, so values nest without outer length
//     prefixes (a registered codec may call AppendAny/ReadAny for its
//     interface-typed fields).
//
// All Append functions append to the caller's buffer and return it, so
// a pooled scratch buffer serves the whole encode without copies.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// Type codes of the any-payload encoding. Codes below CustomBase are
// built in; protocol packages register codecs at CustomBase and above.
const (
	tNil     = 0
	tF64s    = 1 // []float64
	tF64Rows = 2 // [][]float64
	tBytes   = 3 // []byte
	tInts    = 4 // []int
	tIntRows = 5 // [][]int
	tF64     = 6 // float64
	tInt     = 7 // int
	tString  = 8 // string
	tBool    = 9 // bool
	tGob     = 10

	// CustomBase is the first type code available to registered codecs.
	CustomBase = 32
)

// Codec encodes and decodes one concrete payload type under a fixed
// type code. IDs must be stable across processes; since every part runs
// the same binary, compile-time constants per protocol package satisfy
// that by construction.
type Codec struct {
	ID     byte         // >= CustomBase, unique
	Type   reflect.Type // concrete type handled (e.g. reflect.TypeOf(&req{}))
	Append func(b []byte, v any) []byte
	Read   func(b []byte) (any, []byte, error)
}

var (
	codecMu      sync.RWMutex
	codecsByID   [256]*Codec
	codecsByType = map[reflect.Type]*Codec{}
)

// Register installs a codec. It panics on an out-of-range or colliding
// ID (a build-time bug: IDs are package constants).
func Register(c Codec) {
	if c.ID < CustomBase {
		panic(fmt.Sprintf("wire: codec id %d below CustomBase", c.ID))
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	if codecsByID[c.ID] != nil {
		panic(fmt.Sprintf("wire: codec id %d already registered", c.ID))
	}
	cc := c
	codecsByID[c.ID] = &cc
	codecsByType[c.Type] = &cc
}

// ErrShort reports a truncated buffer; errors carry context of what was
// being read.
type DecodeError struct{ What string }

func (e *DecodeError) Error() string { return "wire: truncated or malformed " + e.What }

func short(what string) error { return &DecodeError{What: what} }

// --- integer primitives ---

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// ReadUvarint consumes one unsigned varint.
func ReadUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, short("uvarint")
	}
	return v, b[n:], nil
}

// AppendVarint appends v as a zigzag varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// ReadVarint consumes one zigzag varint.
func ReadVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, short("varint")
	}
	return v, b[n:], nil
}

// AppendInt / ReadInt are the int-sized convenience forms.
func AppendInt(b []byte, v int) []byte { return AppendVarint(b, int64(v)) }

func ReadInt(b []byte) (int, []byte, error) {
	v, rest, err := ReadVarint(b)
	return int(v), rest, err
}

// --- slice length convention: plain count; zero decodes as nil ---

func readLen(b []byte, what string) (n int, rest []byte, err error) {
	v, rest, err := ReadUvarint(b)
	if err != nil {
		return 0, b, short(what + " length")
	}
	return int(v), rest, nil
}

// --- typed slices and scalars ---

// AppendFloat64s appends a []float64 as a length prefix plus raw
// little-endian IEEE-754 words.
func AppendFloat64s(b []byte, xs []float64) []byte {
	b = AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

// ReadFloat64s consumes a []float64. The result is freshly allocated.
func ReadFloat64s(b []byte) ([]float64, []byte, error) {
	n, b, err := readLen(b, "[]float64")
	if err != nil || n == 0 {
		return nil, b, err
	}
	if len(b) < 8*n {
		return nil, b, short("[]float64 body")
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs, b[8*n:], nil
}

// AppendBytes appends a []byte with a length prefix.
func AppendBytes(b []byte, xs []byte) []byte {
	b = AppendUvarint(b, uint64(len(xs)))
	return append(b, xs...)
}

// ReadBytes consumes a []byte. The result is freshly allocated (never
// aliases the input buffer, which transports recycle).
func ReadBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := readLen(b, "[]byte")
	if err != nil || n == 0 {
		return nil, b, err
	}
	if len(b) < n {
		return nil, b, short("[]byte body")
	}
	xs := make([]byte, n)
	copy(xs, b[:n])
	return xs, b[n:], nil
}

// AppendInts appends a []int as zigzag varints.
func AppendInts(b []byte, xs []int) []byte {
	b = AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = AppendVarint(b, int64(x))
	}
	return b
}

// ReadInts consumes a []int.
func ReadInts(b []byte) ([]int, []byte, error) {
	n, b, err := readLen(b, "[]int")
	if err != nil || n == 0 {
		return nil, b, err
	}
	xs := make([]int, n)
	for i := range xs {
		var v int64
		v, b, err = ReadVarint(b)
		if err != nil {
			return nil, b, err
		}
		xs[i] = int(v)
	}
	return xs, b, nil
}

// AppendIntRows / ReadIntRows handle [][]int (gather index vectors).
func AppendIntRows(b []byte, rows [][]int) []byte {
	b = AppendUvarint(b, uint64(len(rows)))
	for _, r := range rows {
		b = AppendInts(b, r)
	}
	return b
}

func ReadIntRows(b []byte) ([][]int, []byte, error) {
	n, b, err := readLen(b, "[][]int")
	if err != nil || n == 0 {
		return nil, b, err
	}
	rows := make([][]int, n)
	for i := range rows {
		rows[i], b, err = ReadInts(b)
		if err != nil {
			return nil, b, err
		}
	}
	return rows, b, nil
}

// AppendFloat64Rows / ReadFloat64Rows handle [][]float64 (halo slabs).
func AppendFloat64Rows(b []byte, rows [][]float64) []byte {
	b = AppendUvarint(b, uint64(len(rows)))
	for _, r := range rows {
		b = AppendFloat64s(b, r)
	}
	return b
}

func ReadFloat64Rows(b []byte) ([][]float64, []byte, error) {
	n, b, err := readLen(b, "[][]float64")
	if err != nil || n == 0 {
		return nil, b, err
	}
	rows := make([][]float64, n)
	for i := range rows {
		rows[i], b, err = ReadFloat64s(b)
		if err != nil {
			return nil, b, err
		}
	}
	return rows, b, nil
}

// AppendString / ReadString.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func ReadString(b []byte) (string, []byte, error) {
	n, b, err := ReadUvarint(b)
	if err != nil {
		return "", b, err
	}
	if uint64(len(b)) < n {
		return "", b, short("string body")
	}
	return string(b[:n]), b[n:], nil
}

// AppendBool / ReadBool.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func ReadBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, b, short("bool")
	}
	return b[0] != 0, b[1:], nil
}

// AppendFloat64 / ReadFloat64.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func ReadFloat64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, b, short("float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// --- the any-payload encoding ---

// gobAny wraps an interface value so gob carries its concrete type by
// name; the types themselves are gob.Register'd by their packages, as
// before.
type gobAny struct{ V any }

// AppendAny appends one payload value: a one-byte type code, then the
// typed encoding. Hot payload shapes take the binary fast path, types
// with a registered codec take theirs, and everything else rides the
// gob fallback (self-describing, length-prefixed). forceGob routes even
// fast-path shapes through gob — the measured baseline of E30 and the
// compatibility escape hatch.
func AppendAny(b []byte, v any, forceGob bool) ([]byte, error) {
	if v == nil {
		return append(b, tNil), nil
	}
	if !forceGob {
		switch x := v.(type) {
		case []float64:
			return AppendFloat64s(append(b, tF64s), x), nil
		case [][]float64:
			return AppendFloat64Rows(append(b, tF64Rows), x), nil
		case []byte:
			return AppendBytes(append(b, tBytes), x), nil
		case []int:
			return AppendInts(append(b, tInts), x), nil
		case [][]int:
			return AppendIntRows(append(b, tIntRows), x), nil
		case float64:
			return AppendFloat64(append(b, tF64), x), nil
		case int:
			return AppendInt(append(b, tInt), x), nil
		case string:
			return AppendString(append(b, tString), x), nil
		case bool:
			return AppendBool(append(b, tBool), x), nil
		}
		codecMu.RLock()
		c := codecsByType[reflect.TypeOf(v)]
		codecMu.RUnlock()
		if c != nil {
			return c.Append(append(b, c.ID), v), nil
		}
	}
	var gb bytes.Buffer
	if err := gob.NewEncoder(&gb).Encode(&gobAny{V: v}); err != nil {
		return b, fmt.Errorf("wire: gob fallback for %T: %w", v, err)
	}
	b = append(b, tGob)
	b = AppendUvarint(b, uint64(gb.Len()))
	return append(b, gb.Bytes()...), nil
}

// ReadAny consumes one payload value written by AppendAny. Decoded
// values are fresh heap and never alias b.
func ReadAny(b []byte) (any, []byte, error) {
	if len(b) < 1 {
		return nil, b, short("payload type code")
	}
	code, b := b[0], b[1:]
	switch code {
	case tNil:
		return nil, b, nil
	case tF64s:
		return retAny(ReadFloat64s(b))
	case tF64Rows:
		return retAny(ReadFloat64Rows(b))
	case tBytes:
		return retAny(ReadBytes(b))
	case tInts:
		return retAny(ReadInts(b))
	case tIntRows:
		return retAny(ReadIntRows(b))
	case tF64:
		return retAny(ReadFloat64(b))
	case tInt:
		return retAny(ReadInt(b))
	case tString:
		return retAny(ReadString(b))
	case tBool:
		return retAny(ReadBool(b))
	case tGob:
		n, b, err := ReadUvarint(b)
		if err != nil {
			return nil, b, err
		}
		if uint64(len(b)) < n {
			return nil, b, short("gob payload body")
		}
		var w gobAny
		if err := gob.NewDecoder(bytes.NewReader(b[:n])).Decode(&w); err != nil {
			return nil, b, fmt.Errorf("wire: gob payload: %w", err)
		}
		return w.V, b[n:], nil
	default:
		codecMu.RLock()
		c := codecsByID[code]
		codecMu.RUnlock()
		if c == nil {
			return nil, b, fmt.Errorf("wire: unknown payload type code %d", code)
		}
		return c.Read(b)
	}
}

func retAny[T any](v T, rest []byte, err error) (any, []byte, error) {
	if err != nil {
		return nil, rest, err
	}
	return v, rest, nil
}
