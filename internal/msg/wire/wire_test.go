package wire

import (
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func init() {
	// The builtin payload shapes, registered for the gob fallback exactly
	// as the transport package registers them in production.
	gob.Register([]float64(nil))
	gob.Register([][]float64(nil))
	gob.Register([]int(nil))
	gob.Register([][]int(nil))
	gob.Register(float64(0))
	gob.Register(int(0))
	gob.Register("")
	gob.Register(false)
}

func roundTrip(t *testing.T, v any, forceGob bool) any {
	t.Helper()
	b, err := AppendAny(nil, v, forceGob)
	if err != nil {
		t.Fatalf("AppendAny(%T, forceGob=%v): %v", v, forceGob, err)
	}
	got, rest, err := ReadAny(b)
	if err != nil {
		t.Fatalf("ReadAny(%T): %v", v, err)
	}
	if len(rest) != 0 {
		t.Fatalf("ReadAny(%T) left %d trailing bytes", v, len(rest))
	}
	return got
}

// TestAnyRoundTrip pins the typed fast paths: every builtin payload
// shape survives a round trip, on both the binary path and the gob
// fallback, with the same empty-to-nil collapse gob performs (so the
// binary codec is an exact drop-in for the PR-9 gob wire).
func TestAnyRoundTrip(t *testing.T) {
	cases := []struct{ in, want any }{
		{nil, nil},
		{[]float64{1, 2.5, -3e300, math.Inf(1), 0}, []float64{1, 2.5, -3e300, math.Inf(1), 0}},
		{[]float64{}, []float64(nil)},
		{[]float64(nil), []float64(nil)},
		{[][]float64{{1, 2}, nil, {}, {3}}, [][]float64{{1, 2}, nil, nil, {3}}},
		{[]byte{0, 1, 255}, []byte{0, 1, 255}},
		{[]byte(nil), []byte(nil)},
		{[]int{0, -1, 1 << 40, -(1 << 40)}, []int{0, -1, 1 << 40, -(1 << 40)}},
		{[][]int{{1}, {2, 3}, nil}, [][]int{{1}, {2, 3}, nil}},
		{3.25, 3.25},
		{-17, -17},
		{"hello wire", "hello wire"},
		{"", ""},
		{true, true},
		{false, false},
	}
	for _, c := range cases {
		for _, forceGob := range []bool{false, true} {
			got := roundTrip(t, c.in, forceGob)
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("round trip (forceGob=%v) of %#v gave %#v, want %#v", forceGob, c.in, got, c.want)
			}
		}
	}
}

// TestNaNBitsPreserved pins bit-exactness through the binary float
// path: the codec must not canonicalize NaN payloads.
func TestNaNBitsPreserved(t *testing.T) {
	nan := math.Float64frombits(0x7ff8000000001234)
	got := roundTrip(t, []float64{nan}, false).([]float64)
	if math.Float64bits(got[0]) != 0x7ff8000000001234 {
		t.Fatalf("NaN bits changed: %x", math.Float64bits(got[0]))
	}
}

// TestDecodedPayloadDoesNotAlias pins the receive-side copy contract:
// a decoded []float64 must be fresh heap, never a view of the input
// buffer (which transports recycle).
func TestDecodedPayloadDoesNotAlias(t *testing.T) {
	b, err := AppendAny(nil, []float64{1, 2, 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := ReadAny(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		b[i] = 0xFF
	}
	got := v.([]float64)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("decoded slice aliases the wire buffer: %v", got)
	}
}

// TestTruncatedInputs ensures every decoder fails cleanly on truncated
// buffers instead of panicking or over-reading.
func TestTruncatedInputs(t *testing.T) {
	full, err := AppendAny(nil, []float64{1, 2, 3, 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if _, _, err := ReadAny(full[:n]); err == nil {
			t.Fatalf("ReadAny accepted a %d-byte prefix of a %d-byte payload", n, len(full))
		}
	}
}

// randomPayload builds one randomized payload value covering every
// builtin shape.
func randomPayload(rng *rand.Rand) any {
	switch rng.Intn(10) {
	case 0:
		return nil
	case 1:
		xs := make([]float64, rng.Intn(20))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return xs
	case 2:
		rows := make([][]float64, rng.Intn(5))
		for i := range rows {
			rows[i] = make([]float64, rng.Intn(6))
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		return rows
	case 3:
		xs := make([]byte, rng.Intn(32))
		rng.Read(xs)
		return xs
	case 4:
		xs := make([]int, rng.Intn(16))
		for i := range xs {
			xs[i] = rng.Intn(1<<20) - 1<<19
		}
		return xs
	case 5:
		rows := make([][]int, rng.Intn(4))
		for i := range rows {
			rows[i] = make([]int, rng.Intn(5))
			for j := range rows[i] {
				rows[i][j] = rng.Intn(100) - 50
			}
		}
		return rows
	case 6:
		return rng.NormFloat64()
	case 7:
		return rng.Intn(1<<30) - 1<<29
	case 8:
		return string(rune('a' + rng.Intn(26)))
	default:
		return rng.Intn(2) == 0
	}
}

// FuzzPayloadCodec drives randomized payloads through both the binary
// codec and the gob fallback and requires the two decoded results to be
// equivalent — the codec must be a drop-in replacement for gob on every
// payload it fast-paths.
func FuzzPayloadCodec(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed))
	}
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i <= int(n)%16; i++ {
			v := randomPayload(rng)

			bin, err := AppendAny(nil, v, false)
			if err != nil {
				t.Fatalf("binary AppendAny(%T): %v", v, err)
			}
			gotBin, rest, err := ReadAny(bin)
			if err != nil || len(rest) != 0 {
				t.Fatalf("binary ReadAny(%T): %v (rest %d)", v, err, len(rest))
			}

			gb, err := AppendAny(nil, v, true)
			if err != nil {
				t.Fatalf("gob AppendAny(%T): %v", v, err)
			}
			gotGob, rest, err := ReadAny(gb)
			if err != nil || len(rest) != 0 {
				t.Fatalf("gob ReadAny(%T): %v (rest %d)", v, err, len(rest))
			}

			// The gob round trip defines the reference semantics (it is
			// what the PR-9 wire delivered); the binary codec must agree
			// with it exactly, empty-to-nil collapse included.
			if !reflect.DeepEqual(gotBin, gotGob) {
				t.Fatalf("codec disagreement on %#v: binary %#v vs gob %#v", v, gotBin, gotGob)
			}
		}
	})
}

// FuzzReadAnyRobust feeds arbitrary bytes to the decoder: it may reject
// them but must never panic or hang.
func FuzzReadAnyRobust(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{tF64s, 200, 1, 2, 3})
	f.Add([]byte{tGob, 5, 1, 2})
	seed, _ := AppendAny(nil, []float64{1, 2}, false)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, b []byte) {
		v, _, err := ReadAny(b)
		_ = v
		_ = err
	})
}
