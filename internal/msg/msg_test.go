package msg

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	r := NewRouter(2)
	defer r.Close()
	tag := Tag{Class: ClassTask, Kind: 1}
	if err := r.Send(0, 1, tag, "hello"); err != nil {
		t.Fatal(err)
	}
	m, err := r.RecvFrom(1, 0, tag)
	if err != nil {
		t.Fatal(err)
	}
	if m.Data.(string) != "hello" || m.Src != 0 {
		t.Fatalf("got %+v", m)
	}
}

func TestSelectiveReceiveLeavesOthersQueued(t *testing.T) {
	r := NewRouter(2)
	defer r.Close()
	a := Tag{Class: ClassTask, Kind: 1}
	b := Tag{Class: ClassData, Call: 7, Kind: 1}
	// Send a data-class message first, then a task-class one.
	if err := r.Send(0, 1, b, "data"); err != nil {
		t.Fatal(err)
	}
	if err := r.Send(0, 1, a, "task"); err != nil {
		t.Fatal(err)
	}
	// Selectively receive the task message even though it arrived second.
	m, err := r.RecvFrom(1, 0, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Data.(string) != "task" {
		t.Fatalf("selective receive picked %v", m.Data)
	}
	// The data message is still pending.
	if n := r.Pending(1); n != 1 {
		t.Fatalf("pending = %d, want 1", n)
	}
	m, err = r.RecvFrom(1, 0, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Data.(string) != "data" {
		t.Fatalf("second receive picked %v", m.Data)
	}
}

func TestFIFOPerSenderAndTag(t *testing.T) {
	r := NewRouter(2)
	defer r.Close()
	tag := Tag{Class: ClassData, Call: 1, Kind: 3}
	for i := 0; i < 100; i++ {
		if err := r.Send(0, 1, tag, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m, err := r.RecvFrom(1, 0, tag)
		if err != nil {
			t.Fatal(err)
		}
		if m.Data.(int) != i {
			t.Fatalf("message %d out of order: got %v", i, m.Data)
		}
	}
}

func TestRecvBlocksUntilMatchArrives(t *testing.T) {
	r := NewRouter(2)
	defer r.Close()
	want := Tag{Class: ClassData, Call: 2, Kind: 5}
	got := make(chan Message, 1)
	go func() {
		m, err := r.RecvFrom(1, AnySource, want)
		if err == nil {
			got <- m
		}
	}()
	// A non-matching message must not wake the receiver with a result.
	if err := r.Send(0, 1, Tag{Class: ClassTask, Kind: 5}, "noise"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		t.Fatalf("receiver matched wrong message %+v", m)
	case <-time.After(20 * time.Millisecond):
	}
	if err := r.Send(0, 1, want, "signal"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Data.(string) != "signal" {
			t.Fatalf("got %v", m.Data)
		}
	case <-time.After(time.Second):
		t.Fatal("receiver never matched")
	}
}

func TestAnySource(t *testing.T) {
	r := NewRouter(3)
	defer r.Close()
	tag := Tag{Class: ClassData, Call: 1, Kind: 0}
	if err := r.Send(2, 0, tag, "from2"); err != nil {
		t.Fatal(err)
	}
	m, err := r.RecvFrom(0, AnySource, tag)
	if err != nil {
		t.Fatal(err)
	}
	if m.Src != 2 {
		t.Fatalf("src = %d", m.Src)
	}
}

func TestBadProcessorNumbers(t *testing.T) {
	r := NewRouter(2)
	defer r.Close()
	if err := r.Send(0, 5, Tag{Class: ClassTask}, nil); !errors.Is(err, ErrBadProcessor) {
		t.Fatalf("Send to bad dst: %v", err)
	}
	if err := r.Send(-1, 0, Tag{Class: ClassTask}, nil); !errors.Is(err, ErrBadProcessor) {
		t.Fatalf("Send from bad src: %v", err)
	}
	if _, err := r.Recv(9, func(Message) bool { return true }); !errors.Is(err, ErrBadProcessor) {
		t.Fatalf("Recv at bad dst: %v", err)
	}
}

func TestCloseWakesBlockedReceivers(t *testing.T) {
	r := NewRouter(1)
	errs := make(chan error, 1)
	go func() {
		_, err := r.Recv(0, func(Message) bool { return true })
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked receiver not woken by Close")
	}
	if err := r.Send(0, 0, Tag{Class: ClassTask}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close: %v", err)
	}
}

// Disjoint call IDs never cross: two "concurrent distributed calls" (paper
// Fig 3.4) exchanging on the same processors with the same kinds but
// different Call values each receive exactly their own traffic.
func TestCallIsolation(t *testing.T) {
	r := NewRouter(2)
	defer r.Close()
	const n = 50
	var wg sync.WaitGroup
	for _, call := range []uint64{1, 2} {
		wg.Add(2)
		go func(call uint64) { // sender on proc 0
			defer wg.Done()
			tag := Tag{Class: ClassData, Call: call, Kind: 9}
			for i := 0; i < n; i++ {
				if err := r.Send(0, 1, tag, [2]uint64{call, uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(call)
		go func(call uint64) { // receiver on proc 1
			defer wg.Done()
			tag := Tag{Class: ClassData, Call: call, Kind: 9}
			for i := 0; i < n; i++ {
				m, err := r.RecvFrom(1, 0, tag)
				if err != nil {
					t.Error(err)
					return
				}
				v := m.Data.([2]uint64)
				if v[0] != call || v[1] != uint64(i) {
					t.Errorf("call %d received %v at position %d", call, v, i)
					return
				}
			}
		}(call)
	}
	wg.Wait()
	if n := r.Pending(1); n != 0 {
		t.Fatalf("%d stray messages", n)
	}
}

// Property: with random interleavings of kinds, each receiver drains
// exactly the messages of its kind, in order.
func TestQuickSelectiveByKind(t *testing.T) {
	f := func(kinds []uint8) bool {
		r := NewRouter(2)
		defer r.Close()
		counts := map[int]int{}
		for i, k := range kinds {
			kind := int(k % 4)
			tag := Tag{Class: ClassData, Call: 1, Kind: kind}
			if err := r.Send(0, 1, tag, i); err != nil {
				return false
			}
			counts[kind]++
		}
		for kind, want := range counts {
			prev := -1
			tag := Tag{Class: ClassData, Call: 1, Kind: kind}
			for i := 0; i < want; i++ {
				m, err := r.RecvFrom(1, 0, tag)
				if err != nil {
					return false
				}
				idx := m.Data.(int)
				if idx <= prev || int(kinds[idx]%4) != kind {
					return false
				}
				prev = idx
			}
		}
		return r.Pending(1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if ClassTask.String() != "task" || ClassData.String() != "data" {
		t.Fatal("Class.String broken")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class should still print")
	}
}

// TestSetLatency pins the simulated-interconnect model: messages become
// receivable only after the configured latency, order between a fixed
// pair is preserved, and the sent counter is unaffected.
func TestSetLatency(t *testing.T) {
	r := NewRouter(2)
	defer r.Close()
	const d = 5 * time.Millisecond
	r.SetLatency(d)
	tag := Tag{Class: ClassData, Kind: 1}

	start := time.Now()
	if err := r.Send(0, 1, tag, "a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Send(0, 1, tag, "b"); err != nil {
		t.Fatal(err)
	}
	m, err := r.RecvFrom(1, 0, tag)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Errorf("message delivered after %v, want >= %v", elapsed, d)
	}
	if m.Data != "a" {
		t.Errorf("first delivery = %v, want a (FIFO)", m.Data)
	}
	m, err = r.RecvFrom(1, 0, tag)
	if err != nil {
		t.Fatal(err)
	}
	if m.Data != "b" {
		t.Errorf("second delivery = %v, want b (FIFO)", m.Data)
	}
	if r.Sent() != 2 {
		t.Errorf("Sent = %d, want 2", r.Sent())
	}

	// Back to zero: immediate delivery again.
	r.SetLatency(0)
	if err := r.Send(1, 0, tag, "c"); err != nil {
		t.Fatal(err)
	}
	if m, err := r.RecvFrom(0, 1, tag); err != nil || m.Data != "c" {
		t.Fatalf("zero-latency delivery: %v, %v", m, err)
	}
}
