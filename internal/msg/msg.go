// Package msg implements the point-to-point message-passing substrate the
// prototype runs on: typed messages with selective receive.
//
// The paper (§3.4.1, §5.3) requires that when the task-parallel notation and
// called data-parallel programs share a message-passing fabric, "both ... use
// communication primitives based on typed messages and selective receives",
// with the sets of types used by each kept disjoint. The original prototype
// retrofitted this onto the untyped Cosmic Environment primitives of the
// Symult s2010; here we build it directly.
//
// Every message carries a Tag consisting of a Class (task-parallel traffic
// vs data-parallel traffic), a Call instance identifier (so concurrently
// executing distributed calls can never intercept each other's messages),
// and a user Kind. Receivers select messages by predicate; non-matching
// messages remain queued. Delivery between a fixed (source, destination,
// tag) pair is FIFO.
package msg

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Class partitions the message-type space between the task-parallel runtime
// and called data-parallel programs, per §3.4.1.
type Class uint8

const (
	// ClassTask tags messages belonging to the task-parallel notation
	// (array-manager traffic, wrapper/combine coordination).
	ClassTask Class = iota + 1
	// ClassData tags messages exchanged between the concurrently executing
	// copies of a called data-parallel program.
	ClassData
)

func (c Class) String() string {
	switch c {
	case ClassTask:
		return "task"
	case ClassData:
		return "data"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Tag is the full message type. Two subsystems never conflict if any field
// of their tag spaces differ.
type Tag struct {
	Class Class
	// Call identifies the distributed-call instance (0 for task-level
	// traffic). Distinct concurrent calls use distinct Call values, which
	// is how Fig 3.4's "no communication between DPA and DPB" is enforced.
	Call uint64
	// Kind is the within-subsystem message type. By convention,
	// non-negative kinds are available to user programs and negative kinds
	// are reserved for runtime-internal protocols (collectives, combines).
	Kind int
}

// Message is a delivered message.
type Message struct {
	Src  int
	Dst  int
	Tag  Tag
	Data any
	// readyAt is the simulated delivery time (zero: immediately
	// receivable). See Router.SetLatency.
	readyAt time.Time
}

// ErrClosed is returned by Send/Recv after the router has been shut down.
var ErrClosed = errors.New("msg: router closed")

// ErrBadProcessor is returned for out-of-range processor numbers.
var ErrBadProcessor = errors.New("msg: processor number out of range")

// ErrTimeout is returned by the deadline-aware receives when no matching
// message becomes deliverable before the deadline.
var ErrTimeout = errors.New("msg: receive timed out")

// ErrProcessorDown is returned by receives at a processor that has been
// killed with KillProcessor.
var ErrProcessorDown = errors.New("msg: processor down")

// Router connects P virtual processors, each with one mailbox. It is the
// only channel through which distinct (virtual) address spaces interact.
type Router struct {
	boxes   []*mailbox
	sent    atomic.Uint64
	latency atomic.Int64 // simulated per-message delivery latency, ns
	fault   atomic.Pointer[faultState]
	part    atomic.Pointer[partition] // nil: single-process (the fast path)
	stats   faultCounters
	done    chan struct{}
	closeMu sync.Mutex
	closed  bool
}

// NewRouter creates a router for p virtual processors numbered 0..p-1.
func NewRouter(p int) *Router {
	if p <= 0 {
		panic("msg: router needs at least one processor")
	}
	r := &Router{boxes: make([]*mailbox, p), done: make(chan struct{})}
	for i := range r.boxes {
		r.boxes[i] = newMailbox()
	}
	return r
}

// P returns the number of processors the router connects.
func (r *Router) P() int { return len(r.boxes) }

// Send delivers a message from src to dst. It never blocks (mailboxes are
// unbounded, like the asynchronous point-to-point sends of the Cosmic
// Environment).
func (r *Router) Send(src, dst int, tag Tag, data any) error {
	if dst < 0 || dst >= len(r.boxes) || src < 0 || src >= len(r.boxes) {
		return fmt.Errorf("%w: send %d -> %d (P=%d)", ErrBadProcessor, src, dst, len(r.boxes))
	}
	if pt := r.part.Load(); pt != nil && !pt.hosted[dst] {
		// The destination lives in another OS process: hand the message to
		// the transport, which serializes the payload before returning
		// (see Transport). Modeled latency and the fault plane do not
		// apply — the wire supplies the real versions.
		if pt.remoteDown[dst].Load() {
			r.stats.downDropped.Add(1)
			return nil
		}
		if err := pt.tr.Send(Message{Src: src, Dst: dst, Tag: tag, Data: data}); err != nil {
			return err
		}
		r.sent.Add(1)
		return nil
	}
	m := Message{Src: src, Dst: dst, Tag: tag, Data: data}
	if d := r.latency.Load(); d > 0 {
		m.readyAt = time.Now().Add(time.Duration(d))
	}
	if fs := r.fault.Load(); fs != nil {
		return r.sendFaulty(fs, r.boxes[dst], m)
	}
	stored, _, err := r.boxes[dst].put(m, false)
	if err != nil {
		return err
	}
	if !stored {
		r.stats.downDropped.Add(1)
		return nil
	}
	r.sent.Add(1)
	return nil
}

// SetLatency installs a simulated per-message delivery latency: a message
// sent at time T becomes receivable at T+d. The in-process machine
// otherwise delivers in nanoseconds, which hides the phenomenon the
// paper's multicomputer runtime actually contends with — per-hop
// interconnect latency that serial request chains accumulate and
// overlapped requests hide. Modeling experiments (E22) use it to measure
// latency hiding; zero (the default) delivers immediately. Set it before
// traffic starts: lowering it while messages are in flight may reorder
// delivery between a fixed (src, dst, tag) pair.
func (r *Router) SetLatency(d time.Duration) { r.latency.Store(int64(d)) }

// Sent returns the total number of messages accepted by Send since the
// router was created. Tests use deltas of this counter to verify message
// budgets (e.g. that a bulk transfer issues one message per owning
// processor rather than one per element).
func (r *Router) Sent() uint64 { return r.sent.Load() }

// Recv performs a selective receive at processor dst: it suspends until a
// message matching the predicate is available and removes and returns the
// oldest such message. Messages not matching remain queued for other
// receivers.
func (r *Router) Recv(dst int, match func(Message) bool) (Message, error) {
	if dst < 0 || dst >= len(r.boxes) {
		return Message{}, fmt.Errorf("%w: recv at %d (P=%d)", ErrBadProcessor, dst, len(r.boxes))
	}
	if pt := r.part.Load(); pt != nil && !pt.hosted[dst] {
		return Message{}, fmt.Errorf("%w: recv at non-hosted processor %d", ErrBadProcessor, dst)
	}
	return r.boxes[dst].get(match, time.Time{})
}

// RecvTimeout is Recv with a deadline: if no matching message becomes
// deliverable within d it returns ErrTimeout. d <= 0 waits forever
// (identical to Recv).
func (r *Router) RecvTimeout(dst int, match func(Message) bool, d time.Duration) (Message, error) {
	if dst < 0 || dst >= len(r.boxes) {
		return Message{}, fmt.Errorf("%w: recv at %d (P=%d)", ErrBadProcessor, dst, len(r.boxes))
	}
	if pt := r.part.Load(); pt != nil && !pt.hosted[dst] {
		return Message{}, fmt.Errorf("%w: recv at non-hosted processor %d", ErrBadProcessor, dst)
	}
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	return r.boxes[dst].get(match, deadline)
}

// RecvFrom receives the oldest message at dst with exactly the given source
// and tag — the common selective-receive pattern of SPMD programs. Pass
// src = AnySource to match any sender.
func (r *Router) RecvFrom(dst, src int, tag Tag) (Message, error) {
	return r.Recv(dst, func(m Message) bool {
		return m.Tag == tag && (src == AnySource || m.Src == src)
	})
}

// RecvFromTimeout is RecvFrom with a deadline; see RecvTimeout.
func (r *Router) RecvFromTimeout(dst, src int, tag Tag, d time.Duration) (Message, error) {
	return r.RecvTimeout(dst, func(m Message) bool {
		return m.Tag == tag && (src == AnySource || m.Src == src)
	}, d)
}

// AnySource matches any sending processor in RecvFrom.
const AnySource = -1

// Pending reports the number of undelivered messages queued at dst
// (diagnostics and tests only).
func (r *Router) Pending(dst int) int {
	if dst < 0 || dst >= len(r.boxes) {
		return 0
	}
	return r.boxes[dst].pending()
}

// Close shuts the router down: queued messages are discarded and all
// blocked and future Recv/Send calls return ErrClosed. Close is
// idempotent.
func (r *Router) Close() {
	r.closeMu.Lock()
	if !r.closed {
		r.closed = true
		close(r.done)
	}
	r.closeMu.Unlock()
	for _, b := range r.boxes {
		b.close()
	}
}

// Done returns a channel closed when the router is closed. Coordinators
// blocked on in-process reply channels select on it so a mid-call
// shutdown surfaces as a clean error instead of a deadlock.
func (r *Router) Done() <-chan struct{} { return r.done }

// mailbox is an unbounded queue with predicate-based removal.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	down   bool // processor killed: senders drop, receivers error
	// timers is a free list of stopped wake-up timers whose callback
	// broadcasts on cond; get reuses one per wait loop instead of
	// allocating a time.AfterFunc per iteration. Guarded by mu.
	timers []*time.Timer
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// put enqueues one message. It reports stored=false (and no error) when
// the processor is down: a dead peer silently eats traffic. reorder asks
// for the fault plane's one-slot swap with the previously queued message;
// swapped reports whether the swap actually happened.
func (b *mailbox) put(m Message, reorder bool) (stored, swapped bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false, false, ErrClosed
	}
	if b.down {
		return false, false, nil
	}
	b.queue = append(b.queue, m)
	if reorder && len(b.queue) >= 2 {
		n := len(b.queue)
		b.queue[n-1], b.queue[n-2] = b.queue[n-2], b.queue[n-1]
		swapped = true
	}
	b.cond.Broadcast()
	return true, swapped, nil
}

// waitTimer pops (or creates) a stopped timer whose callback broadcasts
// on b.cond. The callback takes b.mu before broadcasting so it cannot
// fire in the window between arming the timer and Wait registering the
// receiving goroutine (a lost wakeup would hang the receiver until the
// next unrelated put). Callers hold b.mu.
func (b *mailbox) waitTimer() *time.Timer {
	if n := len(b.timers); n > 0 {
		t := b.timers[n-1]
		b.timers = b.timers[:n-1]
		return t
	}
	t := time.AfterFunc(time.Hour, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.cond.Broadcast()
	})
	t.Stop()
	return t
}

// releaseTimer returns a wait timer to the free list (a stray pending
// broadcast from it is a tolerated spurious wakeup). Callers hold b.mu.
func (b *mailbox) releaseTimer(t *time.Timer) {
	t.Stop()
	if len(b.timers) < 8 {
		b.timers = append(b.timers, t)
	}
}

func (b *mailbox) get(match func(Message) bool, deadline time.Time) (Message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var timer *time.Timer
	defer func() {
		if timer != nil {
			b.releaseTimer(timer)
		}
	}()
	for {
		if b.closed {
			return Message{}, ErrClosed
		}
		if b.down {
			return Message{}, ErrProcessorDown
		}
		// Find the oldest deliverable matching message. Jitter makes
		// per-message delay non-uniform, so a later match may become
		// deliverable earlier than an earlier one: scan all matches and
		// arm a wake-up at the earliest matched delivery time.
		found := -1
		var now, wakeAt time.Time
		for i, m := range b.queue {
			if !match(m) {
				continue
			}
			if m.readyAt.IsZero() {
				found = i
				break
			}
			if now.IsZero() {
				now = time.Now()
			}
			if !m.readyAt.After(now) {
				found = i
				break
			}
			if wakeAt.IsZero() || m.readyAt.Before(wakeAt) {
				wakeAt = m.readyAt
			}
		}
		if found >= 0 {
			m := b.queue[found]
			b.queue = append(b.queue[:found], b.queue[found+1:]...)
			return m, nil
		}
		if !deadline.IsZero() {
			if now.IsZero() {
				now = time.Now()
			}
			if !now.Before(deadline) {
				return Message{}, ErrTimeout
			}
			if wakeAt.IsZero() || deadline.Before(wakeAt) {
				wakeAt = deadline
			}
		}
		if !wakeAt.IsZero() {
			if timer == nil {
				timer = b.waitTimer()
			}
			timer.Reset(time.Until(wakeAt))
			b.cond.Wait()
			timer.Stop()
		} else {
			b.cond.Wait()
		}
	}
}

// kill marks the processor dead: queued messages are discarded, blocked
// and future receives return ErrProcessorDown, future puts are dropped.
func (b *mailbox) kill() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.down {
		return
	}
	b.down = true
	b.queue = nil
	b.cond.Broadcast()
}

func (b *mailbox) isDown() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.down
}

func (b *mailbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

func (b *mailbox) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.queue = nil
	b.cond.Broadcast()
}
