package msg

import (
	"testing"
	"time"
)

// waitState polls until the monitor reports want for proc, failing after
// a generous deadline (heartbeat periods are ~1ms in these tests).
func waitState(t *testing.T, m *Membership, proc int, want MemberState) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if m.State(proc) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("proc %d: state %v, want %v", proc, m.State(proc), want)
}

// TestMembershipAliveSteadyState: with every responder running, all peers
// stay Alive and the monitor accumulates pings and acks.
func TestMembershipAliveSteadyState(t *testing.T) {
	r := NewRouter(4)
	defer r.Close()
	m, err := NewMembership(r, MembershipConfig{Home: 0, Period: time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	time.Sleep(20 * time.Millisecond)
	for p := 1; p < 4; p++ {
		if st := m.State(p); st != StateAlive {
			t.Fatalf("proc %d: state %v, want alive", p, st)
		}
		if !m.Alive(p) || m.Suspect(p) {
			t.Fatalf("proc %d: Alive/Suspect predicates inconsistent", p)
		}
	}
	s := m.Stats()
	if s.Pings == 0 || s.Acks == 0 {
		t.Fatalf("no heartbeat traffic: %+v", s)
	}
	if s.Transitions != 0 {
		t.Fatalf("spurious transitions in a healthy run: %+v", s)
	}
}

// TestMembershipKillTransitions: a killed peer is reported Dead — both
// proactively through State's router check and on the Watch stream — and
// Dead is sticky.
func TestMembershipKillTransitions(t *testing.T) {
	r := NewRouter(4)
	defer r.Close()
	m, err := NewMembership(r, MembershipConfig{Home: 0, Period: time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	time.Sleep(5 * time.Millisecond)
	if err := r.KillProcessor(2); err != nil {
		t.Fatal(err)
	}
	// Proactive: the router's Down signal is visible before any probe
	// deadline expires.
	if st := m.State(2); st != StateDead {
		t.Fatalf("killed proc 2: state %v, want dead immediately", st)
	}
	// The transition must also appear on the event stream.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev := <-m.Watch():
			if ev.Proc == 2 && ev.State == StateDead {
				goto seen
			}
		case <-deadline:
			t.Fatal("no dead event for proc 2 on Watch")
		}
	}
seen:
	// Sticky: still dead after more probe ticks, and survivors stay alive.
	time.Sleep(10 * time.Millisecond)
	if st := m.State(2); st != StateDead {
		t.Fatalf("dead state not sticky: %v", st)
	}
	for _, p := range []int{1, 3} {
		waitState(t, m, p, StateAlive)
	}
	if s := m.Stats(); s.Transitions == 0 {
		t.Fatalf("kill recorded no transitions: %+v", s)
	}
}

// TestMembershipSuspectReverts: a peer whose echoes are delayed past
// SuspectAfter turns Suspect, then reverts to Alive when echoes resume —
// the one non-sticky transition in the protocol.
func TestMembershipSuspectReverts(t *testing.T) {
	r := NewRouter(2)
	defer r.Close()
	// Delay every message long enough that echo ages blow past
	// SuspectAfter but stay under DeadAfter.
	r.SetFaultPlan(&FaultPlan{Seed: 1, Rule: FaultRule{Jitter: 40 * time.Millisecond}})
	m, err := NewMembership(r, MembershipConfig{
		Home:         0,
		Period:       2 * time.Millisecond,
		SuspectAfter: 6 * time.Millisecond,
		DeadAfter:    time.Minute,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	waitState(t, m, 1, StateSuspect)
	// Lift the delay; queued echoes drain and fresh ones arrive on time.
	r.SetFaultPlan(nil)
	waitState(t, m, 1, StateAlive)
	if m.State(1) == StateDead {
		t.Fatal("suspect escalated to dead despite resumed echoes")
	}
}

// TestMembershipHomeAndRangeDefaults: the home processor and out-of-range
// queries report Alive rather than panicking or lying about peers the
// monitor does not track.
func TestMembershipHomeAndRangeDefaults(t *testing.T) {
	r := NewRouter(3)
	defer r.Close()
	m, err := NewMembership(r, MembershipConfig{Home: 1, Period: time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	for _, p := range []int{1, -1, 3, 99} {
		if st := m.State(p); st != StateAlive {
			t.Fatalf("State(%d) = %v, want alive default", p, st)
		}
	}
	if _, err := NewMembership(r, MembershipConfig{Home: 5}); err == nil {
		t.Fatal("out-of-range home accepted")
	}
}
