// Transport seam: the partition of one logical P-processor machine
// across several OS processes ("parts"), and the interface a wire
// transport implements to carry messages between them.
//
// The in-process Router stays the fast path: with no transport installed
// (the default), Send/Recv behave exactly as before — one atomic load on
// the healthy path, zero new allocations. With SetTransport, each part
// hosts a contiguous subset of the processors: sends to hosted
// destinations use the in-memory mailbox switch unchanged, sends to
// non-hosted destinations are handed to the Transport, and messages
// arriving from the wire are injected into the local mailboxes with
// Inject. The fault plane (SetFaultPlan) and the modeled interconnect
// (SetLatency) apply to in-process delivery only: a real transport
// supplies real loss characteristics and real latency.
package msg

import (
	"fmt"
	"sync/atomic"
)

// Transport delivers messages addressed to processors hosted by other
// OS processes.
//
// Contract:
//   - Send must capture the payload before returning — serialize it (or
//     deep-copy it) synchronously. Callers recycle pooled buffers and
//     mutate section-backed slices the moment Send returns; a transport
//     that queues the Message by reference would ship corrupted bytes.
//     (In-process delivery hands references over safely because the
//     ownership conventions are part of each protocol; the wire has no
//     such conventions, so the copy happens at this seam.)
//   - Delivery between a fixed (src, dst) pair must be FIFO and
//     duplicate-free, like the in-process mailboxes. The gob/TCP
//     implementation gets both from TCP.
//   - Send may block briefly (socket backpressure); it must not block
//     indefinitely once Close has been called.
type Transport interface {
	Send(m Message) error
	Close() error
}

// partition is the installed transport state: which processors are
// hosted in this OS process, the wire to everyone else, and the set of
// remote processors known to be dead (propagated kill notices).
type partition struct {
	hosted     []bool
	tr         Transport
	remoteDown []atomic.Bool
}

// SetTransport partitions the router across OS processes: hosted[p]
// reports whether processor p lives in this process. Sends to non-hosted
// processors go through t; everything else is unchanged. Install it
// before any traffic starts (like SetLatency and SetFaultPlan); len of
// hosted must be the router's P.
func (r *Router) SetTransport(t Transport, hosted []bool) {
	if len(hosted) != len(r.boxes) {
		panic(fmt.Sprintf("msg: SetTransport hosted map covers %d of %d processors", len(hosted), len(r.boxes)))
	}
	r.part.Store(&partition{
		hosted:     append([]bool(nil), hosted...),
		tr:         t,
		remoteDown: make([]atomic.Bool, len(hosted)),
	})
}

// Local reports whether processor p is hosted in this OS process. With
// no transport installed every in-range processor is local.
func (r *Router) Local(p int) bool {
	if p < 0 || p >= len(r.boxes) {
		return false
	}
	pt := r.part.Load()
	return pt == nil || pt.hosted[p]
}

// Partitioned reports whether a transport has been installed.
func (r *Router) Partitioned() bool { return r.part.Load() != nil }

// LocalProcs returns the processors hosted in this OS process, in
// ascending order.
func (r *Router) LocalProcs() []int {
	procs := make([]int, 0, len(r.boxes))
	for p := range r.boxes {
		if r.Local(p) {
			procs = append(procs, p)
		}
	}
	return procs
}

// Inject delivers a message that arrived over the wire into the local
// mailbox of its destination, which must be hosted here. Wire arrivals
// bypass the modeled latency and the fault plane: a real transport has
// already imposed the real versions of both.
func (r *Router) Inject(m Message) error {
	if m.Dst < 0 || m.Dst >= len(r.boxes) {
		return fmt.Errorf("%w: inject at %d (P=%d)", ErrBadProcessor, m.Dst, len(r.boxes))
	}
	if pt := r.part.Load(); pt != nil && !pt.hosted[m.Dst] {
		return fmt.Errorf("%w: inject at non-hosted processor %d", ErrBadProcessor, m.Dst)
	}
	stored, _, err := r.boxes[m.Dst].put(m, false)
	if err != nil {
		return err
	}
	if !stored {
		r.stats.downDropped.Add(1)
	}
	return nil
}

// MarkRemoteDown records that a processor hosted by another part has
// been killed (a propagated kill notice). Down reports it from then on,
// which is what lets coordinators in this part fail fast instead of
// burning a retry budget against a dead remote peer.
func (r *Router) MarkRemoteDown(p int) {
	pt := r.part.Load()
	if pt == nil || p < 0 || p >= len(pt.remoteDown) {
		return
	}
	pt.remoteDown[p].Store(true)
}
