// Package vp models the machine of virtual processors the paper's programs
// run on.
//
// The paper (Preface, "Terminology") maps processes and data to *virtual
// processors*: persistent entities with distinct address spaces, each
// identified by a unique processor number, onto which physical processors
// are multiplexed. Here the machine is a set of P logical ranks sharing one
// Go process; distinct address spaces are modelled by ownership discipline
// (a rank's data is reachable only through its array manager or through a
// distributed call executing on that rank) and all cross-rank interaction
// goes through the msg.Router.
package vp

import (
	"fmt"
	"sync"

	"repro/internal/msg"
)

// Machine is a set of P virtual processors and their interconnect.
type Machine struct {
	p      int
	router *msg.Router

	mu      sync.Mutex
	wg      sync.WaitGroup
	stopped bool
	panics  []any
}

// NewMachine creates a machine of p virtual processors numbered 0..p-1.
func NewMachine(p int) *Machine {
	if p <= 0 {
		panic("vp: machine needs at least one processor")
	}
	return &Machine{p: p, router: msg.NewRouter(p)}
}

// P returns the number of virtual processors.
func (m *Machine) P() int { return m.p }

// Router returns the machine's message-passing fabric.
func (m *Machine) Router() *msg.Router { return m.router }

// CheckProc validates a processor number.
func (m *Machine) CheckProc(proc int) error {
	if proc < 0 || proc >= m.p {
		return fmt.Errorf("vp: processor %d out of range [0,%d)", proc, m.p)
	}
	return nil
}

// Go spawns f as a process on virtual processor proc. The processor number
// is purely logical — it determines which mailbox and which array-manager
// instance the process talks to. Panics in f are captured and re-raised by
// Wait, so a crashed process cannot be silently lost.
func (m *Machine) Go(proc int, f func(proc int)) {
	if err := m.CheckProc(proc); err != nil {
		panic(err)
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				m.mu.Lock()
				m.panics = append(m.panics, r)
				m.mu.Unlock()
			}
		}()
		f(proc)
	}()
}

// Wait blocks until every process started with Go has terminated. If any
// process panicked, Wait panics with the first captured value.
func (m *Machine) Wait() {
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.panics) > 0 {
		p := m.panics[0]
		m.panics = nil
		panic(p)
	}
}

// Shutdown closes the interconnect, releasing any processes blocked in
// receives. Safe to call more than once.
func (m *Machine) Shutdown() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	m.router.Close()
}

// AllProcs returns the processor numbers 0..P-1, the default "all available
// processors" group.
func (m *Machine) AllProcs() []int {
	procs := make([]int, m.p)
	for i := range procs {
		procs[i] = i
	}
	return procs
}
