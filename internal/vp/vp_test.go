package vp

import (
	"sync/atomic"
	"testing"

	"repro/internal/msg"
)

func TestMachineBasics(t *testing.T) {
	m := NewMachine(4)
	defer m.Shutdown()
	if m.P() != 4 {
		t.Fatalf("P = %d", m.P())
	}
	if m.Router().P() != 4 {
		t.Fatalf("router P = %d", m.Router().P())
	}
	procs := m.AllProcs()
	for i, p := range procs {
		if p != i {
			t.Fatalf("AllProcs[%d] = %d", i, p)
		}
	}
}

func TestGoRunsOnEachProcessor(t *testing.T) {
	m := NewMachine(8)
	defer m.Shutdown()
	var mask atomic.Int64
	for p := 0; p < 8; p++ {
		m.Go(p, func(proc int) {
			mask.Add(1 << proc)
		})
	}
	m.Wait()
	if mask.Load() != 255 {
		t.Fatalf("mask = %b", mask.Load())
	}
}

func TestProcessesCommunicateViaRouter(t *testing.T) {
	m := NewMachine(2)
	defer m.Shutdown()
	tag := msg.Tag{Class: msg.ClassTask, Kind: 1}
	var got atomic.Int64
	m.Go(0, func(proc int) {
		if err := m.Router().Send(proc, 1, tag, 41); err != nil {
			t.Error(err)
		}
	})
	m.Go(1, func(proc int) {
		mm, err := m.Router().RecvFrom(proc, 0, tag)
		if err != nil {
			t.Error(err)
			return
		}
		got.Store(int64(mm.Data.(int)) + 1)
	})
	m.Wait()
	if got.Load() != 42 {
		t.Fatalf("got = %d", got.Load())
	}
}

func TestWaitPropagatesPanics(t *testing.T) {
	m := NewMachine(2)
	defer m.Shutdown()
	m.Go(0, func(int) { panic("boom") })
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recover = %v", r)
		}
	}()
	m.Wait()
}

func TestBadProcPanics(t *testing.T) {
	m := NewMachine(1)
	defer m.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("Go on out-of-range proc must panic")
		}
	}()
	m.Go(3, func(int) {})
}

func TestCheckProc(t *testing.T) {
	m := NewMachine(2)
	defer m.Shutdown()
	if err := m.CheckProc(0); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckProc(2); err == nil {
		t.Fatal("CheckProc(2) on P=2 machine should fail")
	}
	if err := m.CheckProc(-1); err == nil {
		t.Fatal("CheckProc(-1) should fail")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	m := NewMachine(2)
	m.Shutdown()
	m.Shutdown() // must not panic
}
