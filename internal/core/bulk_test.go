package core

import (
	"testing"

	"repro/internal/arraymgr"
	"repro/internal/darray"
	"repro/internal/grid"
)

// bulkCase is one point in the configuration space the bulk data plane
// must agree with the per-element path on.
type bulkCase struct {
	name  string
	p     int
	spec  ArraySpec
	subLo []int
	subHi []int
}

func bulkCases() []bulkCase {
	return []bulkCase{
		{
			name: "1d/block", p: 4,
			spec:  ArraySpec{Dims: []int{24}},
			subLo: []int{5}, subHi: []int{19},
		},
		{
			name: "1d/bordered", p: 3,
			spec:  ArraySpec{Dims: []int{12}, Borders: arraymgr.ExplicitBorders{2, 1}},
			subLo: []int{1}, subHi: []int{12},
		},
		{
			name: "1d/int", p: 4,
			spec:  ArraySpec{Dims: []int{16}, Type: darray.Int},
			subLo: []int{3}, subHi: []int{13},
		},
		{
			name: "2d/block-block", p: 4,
			spec:  ArraySpec{Dims: []int{8, 6}, Distrib: []grid.Decomp{grid.BlockOf(2), grid.BlockOf(2)}},
			subLo: []int{1, 1}, subHi: []int{7, 5},
		},
		{
			name: "2d/block-star", p: 4,
			spec:  ArraySpec{Dims: []int{8, 6}, Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()}},
			subLo: []int{2, 0}, subHi: []int{6, 6},
		},
		{
			name: "2d/colmajor", p: 4,
			spec:  ArraySpec{Dims: []int{8, 6}, Indexing: grid.ColMajor},
			subLo: []int{0, 2}, subHi: []int{8, 4},
		},
		{
			name: "2d/colmajor/bordered", p: 4,
			spec: ArraySpec{
				Dims: []int{8, 8}, Indexing: grid.ColMajor,
				Borders: arraymgr.ExplicitBorders{1, 1, 2, 0},
			},
			subLo: []int{3, 3}, subHi: []int{8, 8},
		},
		{
			name: "2d/subset-procs", p: 6,
			spec:  ArraySpec{Dims: []int{4, 4}, Procs: []int{5, 1, 3, 0}},
			subLo: []int{0, 1}, subHi: []int{4, 3},
		},
		{
			name: "3d/mixed", p: 8,
			spec: ArraySpec{
				Dims:    []int{4, 6, 2},
				Distrib: []grid.Decomp{grid.BlockOf(2), grid.BlockOf(3), grid.NoDecomp()},
				Borders: arraymgr.ExplicitBorders{1, 0, 0, 1, 1, 1},
			},
			subLo: []int{1, 2, 0}, subHi: []int{3, 6, 2},
		},
	}
}

// TestBulkPerElementEquivalence is the equivalence property of the bulk
// data plane: Fill+Snapshot through block transfers must be
// element-for-element identical to write_element/read_element loops,
// across decompositions, border widths, indexing orders and element types.
func TestBulkPerElementEquivalence(t *testing.T) {
	for _, c := range bulkCases() {
		t.Run(c.name, func(t *testing.T) {
			m := newMachine(t, c.p)
			value := func(idx []int) float64 {
				v := 7.0
				for _, x := range idx {
					v = 31*v + float64(x)
				}
				return v
			}

			// Bulk write (Fill), per-element read back.
			a, err := m.NewArray(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Fill(value); err != nil {
				t.Fatal(err)
			}
			meta, err := a.Meta()
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := wholeRect(meta)
			if err := grid.ForEachRect(lo, hi, func(idx []int, k int) error {
				got, err := a.Read(idx...)
				if err != nil {
					return err
				}
				want := value(idx)
				if c.spec.Type == darray.Int {
					want = float64(int64(want))
				}
				if got != want {
					t.Fatalf("after Fill, element %v = %v, want %v", idx, got, want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Per-element write, bulk read back (Snapshot).
			if err := grid.ForEachRect(lo, hi, func(idx []int, k int) error {
				return a.Write(value(idx)+1, idx...)
			}); err != nil {
				t.Fatal(err)
			}
			snap, err := a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if err := grid.ForEachRect(lo, hi, func(idx []int, k int) error {
				want := value(idx) + 1
				if c.spec.Type == darray.Int {
					want = float64(int64(want))
				}
				if snap[k] != want {
					t.Fatalf("Snapshot[%v] = %v, want %v", idx, snap[k], want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Sub-rectangle: WriteBlock then per-element and ReadBlock agree.
			sub := make([]float64, grid.RectSize(c.subLo, c.subHi))
			for i := range sub {
				sub[i] = float64(-1 - i)
			}
			if err := a.WriteBlock(c.subLo, c.subHi, sub); err != nil {
				t.Fatal(err)
			}
			got, err := a.ReadBlock(c.subLo, c.subHi)
			if err != nil {
				t.Fatal(err)
			}
			if err := grid.ForEachRect(c.subLo, c.subHi, func(idx []int, k int) error {
				want := sub[k]
				if c.spec.Type == darray.Int {
					want = float64(int64(want))
				}
				if got[k] != want {
					t.Fatalf("ReadBlock[%v] = %v, want %v", idx, got[k], want)
				}
				el, err := a.Read(idx...)
				if err != nil {
					return err
				}
				if el != want {
					t.Fatalf("element %v = %v after WriteBlock, want %v", idx, el, want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBulkMessageBudget is the acceptance criterion of the bulk data
// plane: Fill and Snapshot issue at most one array-manager message per
// owning processor (plus the metadata fetch and the coordinator request),
// not one per element.
func TestBulkMessageBudget(t *testing.T) {
	const p = 4
	m := newMachine(t, p)
	a, err := m.NewArray(ArraySpec{Dims: []int{256}})
	if err != nil {
		t.Fatal(err)
	}
	owners := p
	// find_info(meta) + coordinator request + one request per remote owner.
	budget := uint64(2 + owners - 1)
	router := m.VM.Router()

	before := router.Sent()
	if err := a.Fill(func(idx []int) float64 { return float64(idx[0]) }); err != nil {
		t.Fatal(err)
	}
	if got := router.Sent() - before; got > budget {
		t.Fatalf("Fill of 256 elements sent %d messages, budget %d", got, budget)
	}

	before = router.Sent()
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := router.Sent() - before; got > budget {
		t.Fatalf("Snapshot of 256 elements sent %d messages, budget %d", got, budget)
	}
	for i, v := range snap {
		if v != float64(i) {
			t.Fatalf("snap[%d] = %v", i, v)
		}
	}
}

func TestBulkErrors(t *testing.T) {
	m := newMachine(t, 2)
	a, err := m.NewArray(ArraySpec{Dims: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadBlock([]int{0, 0}, []int{5, 4}); !IsStatus(err, arraymgr.StatusInvalid) {
		t.Fatalf("out-of-range ReadBlock: %v", err)
	}
	if _, err := a.ReadBlock([]int{1, 1}, []int{1, 4}); !IsStatus(err, arraymgr.StatusInvalid) {
		t.Fatalf("empty ReadBlock: %v", err)
	}
	if err := a.WriteBlock([]int{0, 0}, []int{2, 2}, []float64{1, 2}); !IsStatus(err, arraymgr.StatusInvalid) {
		t.Fatalf("short WriteBlock: %v", err)
	}
	if err := a.FillBlock([]int{0, 0}, []int{9, 9}, func(idx []int) float64 { return 0 }); !IsStatus(err, arraymgr.StatusInvalid) {
		t.Fatalf("out-of-range FillBlock: %v", err)
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadBlock([]int{0, 0}, []int{4, 4}); !IsStatus(err, arraymgr.StatusNotFound) {
		t.Fatalf("freed ReadBlock: %v", err)
	}
	if err := a.WriteBlock([]int{0, 0}, []int{4, 4}, make([]float64, 16)); !IsStatus(err, arraymgr.StatusNotFound) {
		t.Fatalf("freed WriteBlock: %v", err)
	}
	if _, err := a.Snapshot(); !IsStatus(err, arraymgr.StatusNotFound) {
		t.Fatalf("freed Snapshot: %v", err)
	}
	if err := a.Fill(func(idx []int) float64 { return 0 }); !IsStatus(err, arraymgr.StatusNotFound) {
		t.Fatalf("freed Fill: %v", err)
	}
}

// TestReadBlockInto drives the buffer-reuse read across the bulk-case
// configuration space: one caller-owned buffer serves every rectangle and
// always agrees with ReadBlock.
func TestReadBlockInto(t *testing.T) {
	for _, c := range bulkCases() {
		t.Run(c.name, func(t *testing.T) {
			m := newMachine(t, c.p)
			a, err := m.NewArray(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Fill(func(idx []int) float64 {
				v := 3.0
				for _, x := range idx {
					v = 17*v + float64(x)
				}
				return v
			}); err != nil {
				t.Fatal(err)
			}
			want, err := a.ReadBlock(c.subLo, c.subHi)
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]float64, grid.RectSize(c.subLo, c.subHi))
			if err := a.ReadBlockInto(c.subLo, c.subHi, dst); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
				}
			}
		})
	}
}

// TestStridedBlockOps drives the strided plane at the public API across
// the bulk-case configuration space: ReadBlockStrided (both variants) must
// agree with per-element reads over the lattice, and WriteBlockStrided
// must change exactly the lattice.
func TestStridedBlockOps(t *testing.T) {
	for _, c := range bulkCases() {
		t.Run(c.name, func(t *testing.T) {
			m := newMachine(t, c.p)
			a, err := m.NewArray(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			value := func(idx []int) float64 {
				v := 5.0
				for _, x := range idx {
					v = 13*v + float64(x)
				}
				if c.spec.Type == darray.Int {
					v = float64(int64(v))
				}
				return v
			}
			if err := a.Fill(value); err != nil {
				t.Fatal(err)
			}
			step := make([]int, len(c.subLo))
			for i := range step {
				step[i] = 2 + i%2
			}

			want := make(map[int]float64) // lattice position -> value
			got, err := a.ReadBlockStrided(c.subLo, c.subHi, step)
			if err != nil {
				t.Fatal(err)
			}
			if n := grid.StridedRectSize(c.subLo, c.subHi, step); len(got) != n {
				t.Fatalf("strided read returned %d values, lattice has %d", len(got), n)
			}
			if err := grid.ForEachStridedRect(c.subLo, c.subHi, step, func(idx []int, k int) error {
				if got[k] != value(idx) {
					t.Fatalf("strided[%d] (%v) = %v, want %v", k, idx, got[k], value(idx))
				}
				want[k] = value(idx) - 100
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			dst := make([]float64, len(got))
			if err := a.ReadBlockStridedInto(c.subLo, c.subHi, step, dst); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if dst[i] != got[i] {
					t.Fatalf("dst[%d] = %v, want %v", i, dst[i], got[i])
				}
			}

			// Strided write: lattice elements take the new values,
			// everything else keeps the fill pattern.
			vals := make([]float64, len(got))
			for k, v := range want {
				vals[k] = v
			}
			if err := a.WriteBlockStrided(c.subLo, c.subHi, step, vals); err != nil {
				t.Fatal(err)
			}
			meta, err := a.Meta()
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := wholeRect(meta)
			onLattice := func(idx []int) (int, bool) {
				pos := 0
				for i := range idx {
					if idx[i] < c.subLo[i] || idx[i] >= c.subHi[i] || (idx[i]-c.subLo[i])%step[i] != 0 {
						return 0, false
					}
					pos = pos*((c.subHi[i]-c.subLo[i]+step[i]-1)/step[i]) + (idx[i]-c.subLo[i])/step[i]
				}
				return pos, true
			}
			if err := grid.ForEachRect(lo, hi, func(idx []int, k int) error {
				el, err := a.Read(idx...)
				if err != nil {
					return err
				}
				expect := value(idx)
				if pos, ok := onLattice(idx); ok {
					expect = vals[pos]
					if c.spec.Type == darray.Int {
						expect = float64(int64(expect))
					}
				}
				if el != expect {
					t.Fatalf("element %v = %v after strided write, want %v", idx, el, expect)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGatherScatterElements drives the indexed gather/scatter plane at the
// public API across the bulk-case configuration space: ScatterElements
// followed by GatherElements and GatherElementsInto must agree with the
// per-element path on scattered (and repeated) indices.
func TestGatherScatterElements(t *testing.T) {
	for _, c := range bulkCases() {
		t.Run(c.name, func(t *testing.T) {
			m := newMachine(t, c.p)
			a, err := m.NewArray(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			// Scatter a value to every corner of the sub-rectangle plus its
			// lo corner again (a repeat: the second write must win).
			nd := len(c.subLo)
			corner := func(pick int) []int {
				idx := make([]int, nd)
				for d := 0; d < nd; d++ {
					if pick&(1<<d) != 0 {
						idx[d] = c.subHi[d] - 1
					} else {
						idx[d] = c.subLo[d]
					}
				}
				return idx
			}
			var indices [][]int
			for pick := 0; pick < 1<<nd; pick++ {
				indices = append(indices, corner(pick))
			}
			indices = append(indices, corner(0))
			vals := make([]float64, len(indices))
			for i := range vals {
				vals[i] = float64(10*i + 1)
			}
			if err := a.ScatterElements(indices, vals); err != nil {
				t.Fatal(err)
			}
			got, err := a.GatherElements(indices)
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]float64, len(indices))
			if err := a.GatherElementsInto(indices, dst); err != nil {
				t.Fatal(err)
			}
			for i, idx := range indices {
				want, err := a.Read(idx...)
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want || dst[i] != want {
					t.Fatalf("gather[%d] (%v) = %v/%v, element read %v", i, idx, got[i], dst[i], want)
				}
			}
			// The repeated lo corner holds its last-written value.
			want := vals[len(vals)-1]
			if c.spec.Type == darray.Int {
				want = float64(int64(want))
			}
			if v, err := a.Read(corner(0)...); err != nil || v != want {
				t.Fatalf("repeated index = %v (%v), want last-written %v", v, err, want)
			}
		})
	}
}

// TestGatherMessageBudget bounds the indexed plane at the public API: a
// k-element gather or scatter costs one coordinator request plus at most
// one request per remote owner — never one per element.
func TestGatherMessageBudget(t *testing.T) {
	const p = 4
	m := newMachine(t, p)
	a, err := m.NewArray(ArraySpec{Dims: []int{256}})
	if err != nil {
		t.Fatal(err)
	}
	const k = 128
	indices := make([][]int, k)
	vals := make([]float64, k)
	for i := range indices {
		indices[i] = []int{(i * 11) % 256}
		vals[i] = float64(i)
	}
	budget := uint64(1 + p - 1)
	router := m.VM.Router()

	before := router.Sent()
	if err := a.ScatterElements(indices, vals); err != nil {
		t.Fatal(err)
	}
	if got := router.Sent() - before; got > budget {
		t.Fatalf("%d-element scatter sent %d messages, budget %d", k, got, budget)
	}
	before = router.Sent()
	if _, err := a.GatherElements(indices); err != nil {
		t.Fatal(err)
	}
	if got := router.Sent() - before; got > budget {
		t.Fatalf("%d-element gather sent %d messages, budget %d", k, got, budget)
	}
}

// TestLocalBlockOpsAllocationFree pins the zero-copy local fast path at
// the public API: reading or writing a wholly-local rectangle through
// core.Array performs zero heap allocations and sends zero messages.
func TestLocalBlockOpsAllocationFree(t *testing.T) {
	m := newMachine(t, 4)
	a, err := m.NewArray(ArraySpec{
		Dims:    []int{32, 32},
		Distrib: []grid.Decomp{grid.BlockOf(2), grid.BlockOf(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := []int{0, 0}, []int{16, 16} // processor 0's local section
	buf := make([]float64, 256)
	if err := a.WriteBlock(lo, hi, buf); err != nil {
		t.Fatal(err)
	}
	router := m.VM.Router()
	before := router.Sent()
	writeAllocs := testing.AllocsPerRun(200, func() {
		if err := a.WriteBlock(lo, hi, buf); err != nil {
			t.Error(err)
		}
	})
	readAllocs := testing.AllocsPerRun(200, func() {
		if err := a.ReadBlockInto(lo, hi, buf); err != nil {
			t.Error(err)
		}
	})
	if writeAllocs != 0 {
		t.Errorf("local WriteBlock: %v allocs/op, want 0", writeAllocs)
	}
	if readAllocs != 0 {
		t.Errorf("local ReadBlockInto: %v allocs/op, want 0", readAllocs)
	}
	if sent := router.Sent() - before; sent != 0 {
		t.Errorf("local block ops sent %d messages, want 0", sent)
	}
}

// TestArrayRedistribute drives the redistribution facade: a block
// array's rectangle lands on a cyclic twin directly, matching the
// read-then-write bounce it replaces, including the offset variant.
func TestArrayRedistribute(t *testing.T) {
	m := newMachine(t, 4)
	src, err := m.NewArray(ArraySpec{Dims: []int{18}})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := m.NewArray(ArraySpec{Dims: []int{18},
		Distrib: []grid.Decomp{grid.CyclicDefault()}})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Fill(func(idx []int) float64 { return float64(idx[0] * 2) }); err != nil {
		t.Fatal(err)
	}
	if err := dst.RedistributeFrom(src, []int{3}, []int{15}); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 15; i++ {
		v, err := dst.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != float64(i*2) {
			t.Fatalf("dst[%d] = %v, want %v", i, v, float64(i*2))
		}
	}
	if err := dst.RedistributeRectFrom(src, []int{0}, []int{16}, []int{2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		v, err := dst.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != float64((16+i)*2) {
			t.Fatalf("shifted dst[%d] = %v, want %v", i, v, float64((16+i)*2))
		}
	}
	if err := dst.RedistributeStridedFrom(src, []int{4}, []int{12}, []int{2}); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{4, 6, 8, 10} {
		v, err := dst.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != float64(i*2) {
			t.Fatalf("strided dst[%d] = %v, want %v", i, v, float64(i*2))
		}
	}
	if err := dst.RedistributeFrom(dst, []int{0}, []int{4}); err == nil {
		t.Fatal("aliasing redistribute accepted")
	}
}
