package core

import (
	"reflect"
	"testing"

	"repro/internal/arraymgr"
	"repro/internal/darray"
	"repro/internal/dcall"
	"repro/internal/defval"
	"repro/internal/grid"
	"repro/internal/spmd"
)

func newMachine(t *testing.T, p int) *Machine {
	t.Helper()
	m := New(p)
	t.Cleanup(m.Close)
	return m
}

func TestMachineBasics(t *testing.T) {
	m := newMachine(t, 4)
	if m.P() != 4 {
		t.Fatalf("P = %d", m.P())
	}
	if got := m.Procs(1, 2, 3); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("Procs = %v", got)
	}
	if got := m.AllProcs(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("AllProcs = %v", got)
	}
}

func TestArrayLifecycle(t *testing.T) {
	m := newMachine(t, 4)
	a, err := m.NewArray(ArraySpec{Dims: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Write(3.5, 1, 2); err != nil {
		t.Fatal(err)
	}
	v, err := a.Read(1, 2)
	if err != nil || v != 3.5 {
		t.Fatalf("Read = %v, %v", v, err)
	}
	meta, err := a.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(meta.GridDims, []int{2, 2}) {
		t.Fatalf("grid = %v", meta.GridDims)
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read(0, 0); !IsStatus(err, arraymgr.StatusNotFound) {
		t.Fatalf("read after free: %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := newMachine(t, 4)
	a, err := m.NewArray(ArraySpec{Dims: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := a.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Type != darray.Double || meta.Indexing != grid.RowMajor {
		t.Fatalf("defaults: %+v", meta)
	}
	if !reflect.DeepEqual(meta.Procs, []int{0, 1, 2, 3}) {
		t.Fatalf("default procs = %v", meta.Procs)
	}
	if !reflect.DeepEqual(meta.Borders, []int{0, 0}) {
		t.Fatalf("default borders = %v", meta.Borders)
	}
}

func TestCreateErrors(t *testing.T) {
	m := newMachine(t, 4)
	// Indivisible shapes are no longer errors: the trailing block is
	// simply short (here processor 0 holds 3 elements, processor 1 two).
	a, err := m.NewArray(ArraySpec{Dims: []int{5}, Procs: []int{0, 1}})
	if err != nil {
		t.Fatalf("uneven dims: %v", err)
	}
	if err := a.Fill(func(idx []int) float64 { return float64(idx[0] + 1) }); err != nil {
		t.Fatal(err)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, []float64{1, 2, 3, 4, 5}) {
		t.Fatalf("uneven snapshot = %v", snap)
	}
	if _, err := m.NewArray(ArraySpec{}); !IsStatus(err, arraymgr.StatusInvalid) {
		t.Fatalf("missing dims: %v", err)
	}
}

func TestFillAndSnapshot(t *testing.T) {
	m := newMachine(t, 4)
	a, err := m.NewArray(ArraySpec{Dims: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fill(func(idx []int) float64 { return float64(10*idx[0] + idx[1]) }); err != nil {
		t.Fatal(err)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 2, 3, 10, 11, 12, 13}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRegisterAndCall(t *testing.T) {
	m := newMachine(t, 4)
	if err := m.Register("scale2", func(w *spmd.World, a *dcall.Args) {
		sec := a.Section(0)
		for i := range sec.F {
			sec.F[i] *= 2
		}
	}); err != nil {
		t.Fatal(err)
	}
	a, err := m.NewArray(ArraySpec{Dims: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fill(func(idx []int) float64 { return float64(idx[0]) }); err != nil {
		t.Fatal(err)
	}
	if err := m.Call(m.AllProcs(), "scale2", a.Param()); err != nil {
		t.Fatal(err)
	}
	snap, _ := a.Snapshot()
	for i, v := range snap {
		if v != float64(2*i) {
			t.Fatalf("element %d = %v", i, v)
		}
	}
}

func TestCallErrors(t *testing.T) {
	m := newMachine(t, 2)
	if err := m.Call(m.AllProcs(), "unknown"); err == nil {
		t.Fatal("unknown program must error")
	}
	if err := m.CallFn(nil, func(w *spmd.World, a *dcall.Args) {}); err == nil {
		t.Fatal("empty group must error")
	}
	// Program panic surfaces as system error.
	err := m.CallFn(m.AllProcs(), func(w *spmd.World, a *dcall.Args) { panic("x") })
	if !IsStatus(err, arraymgr.StatusError) {
		t.Fatalf("panic: %v", err)
	}
}

func TestCallStatusRaw(t *testing.T) {
	m := newMachine(t, 3)
	st := m.CallFnStatus(m.AllProcs(), func(w *spmd.World, a *dcall.Args) {
		a.SetStatus(0, 100+w.Rank())
	}, dcall.Status())
	if st != 102 {
		t.Fatalf("raw status = %d", st)
	}
}

func TestCallWithReduction(t *testing.T) {
	m := newMachine(t, 4)
	out := defval.New[[]float64]()
	sum := func(a, b []float64) []float64 { return []float64{a[0] + b[0]} }
	if err := m.CallFn(m.AllProcs(), func(w *spmd.World, a *dcall.Args) {
		a.Reduction(0)[0] = float64(w.Rank() + 1)
	}, dcall.Reduce(1, sum, out)); err != nil {
		t.Fatal(err)
	}
	if got := out.Value()[0]; got != 10 {
		t.Fatalf("sum = %v", got)
	}
}

func TestVerifyThroughFacade(t *testing.T) {
	m := newMachine(t, 2)
	a, err := m.NewArray(ArraySpec{Dims: []int{4}, Borders: arraymgr.ExplicitBorders{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Write(5, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(1, arraymgr.ExplicitBorders{2, 2}, grid.RowMajor); err != nil {
		t.Fatal(err)
	}
	v, err := a.Read(2)
	if err != nil || v != 5 {
		t.Fatalf("after verify: %v, %v", v, err)
	}
	if err := a.Verify(1, arraymgr.ExplicitBorders{2, 2}, grid.ColMajor); !IsStatus(err, arraymgr.StatusInvalid) {
		t.Fatalf("wrong indexing: %v", err)
	}
}

func TestTaskParallelProcessesWithGoWait(t *testing.T) {
	m := newMachine(t, 2)
	a, err := m.NewArray(ArraySpec{Dims: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	done := defval.NewSignal()
	m.Go(0, func(proc int) {
		if err := a.WriteOn(proc, 1, 0); err != nil {
			t.Error(err)
		}
		defval.Fire(done)
	})
	m.Go(1, func(proc int) {
		defval.Wait(done) // task-level synchronisation via definitional var
		v, err := a.ReadOn(proc, 0)
		if err != nil || v != 1 {
			t.Errorf("read = %v, %v", v, err)
		}
	})
	m.Wait()
}

func TestStatusErrorFormatting(t *testing.T) {
	err := &StatusError{Op: "read_element", Status: arraymgr.StatusNotFound}
	if err.Error() != "core: read_element: STATUS_NOT_FOUND" {
		t.Fatalf("Error() = %q", err.Error())
	}
	if !IsStatus(err, arraymgr.StatusNotFound) || IsStatus(err, arraymgr.StatusInvalid) {
		t.Fatal("IsStatus broken")
	}
	if IsStatus(nil, arraymgr.StatusOK) {
		t.Fatal("IsStatus(nil) should be false")
	}
}

func TestArrayParamHelper(t *testing.T) {
	m := newMachine(t, 2)
	a, err := m.NewArray(ArraySpec{Dims: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CallFn(m.AllProcs(), func(w *spmd.World, args *dcall.Args) {
		args.Section(0).F[0] = float64(w.Rank() + 1)
	}, a.Param()); err != nil {
		t.Fatal(err)
	}
	v0, _ := a.Read(0)
	v2, _ := a.Read(2)
	if v0 != 1 || v2 != 2 {
		t.Fatalf("sections = %v, %v", v0, v2)
	}
}
