package core

import (
	"fmt"
	"sync"

	"repro/internal/grid"
)

// ElemTask is a task-parallel program invoked once per element of a
// distributed array under the alternative integration model (§2.2). It
// receives the machine (so it may spawn further processes, create arrays,
// or make distributed calls), the element's global index, and accessors
// for the element's value. The accessors operate through the array manager
// on the processor owning the element.
type ElemTask func(m *Machine, idx []int, get func() (float64, error), set func(float64) error) error

// ForEachElement implements the paper's alternative model of integration
// (§2.2): "calling a task-parallel program on a distributed data structure
// is equivalent to calling it concurrently once for each element of the
// distributed data structure, and each copy of the task-parallel program
// can consist of multiple processes."
//
// One task-parallel process is created per element, placed on the
// processor owning that element; ForEachElement returns when all copies
// have terminated (so, like a distributed call, it is semantically a
// sequential step of the enclosing data-parallel sequence). The first
// error any copy reports is returned.
func (m *Machine) ForEachElement(a *Array, task ElemTask) error {
	meta, err := a.Meta()
	if err != nil {
		return err
	}
	n := grid.Size(meta.Dims)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for lin := 0; lin < n; lin++ {
		idx, err := grid.Unflatten(lin, meta.Dims, grid.RowMajor)
		if err != nil {
			return err
		}
		owner, _, err := meta.Owner(idx)
		if err != nil {
			return err
		}
		lin, idx, owner := lin, idx, owner
		wg.Add(1)
		m.Go(owner, func(proc int) {
			defer wg.Done()
			get := func() (float64, error) { return a.ReadOn(proc, idx...) }
			set := func(v float64) error { return a.WriteOn(proc, v, idx...) }
			if err := task(m, idx, get, set); err != nil {
				errs[lin] = fmt.Errorf("element %v: %w", idx, err)
			}
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
