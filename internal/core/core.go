// Package core is the public face of the library: it ties together the
// virtual-processor machine, the array manager, and the distributed-call
// runtime into the integrated task/data-parallel programming model of the
// paper (§2–§3).
//
// A core.Machine gives a task-parallel Go program exactly the two
// operations the model adds to a task-parallel notation's repertoire
// (§2.1):
//
//   - creation and manipulation of distributed arrays, viewed globally
//     (NewArray, Array.Read/Write/Verify/Free, ...);
//   - distributed calls to SPMD data-parallel programs, semantically
//     equivalent to sequential subprogram calls (Register, Call, CallFn).
//
// Task-parallel structure itself is expressed with ordinary goroutines or
// the compose package; synchronisation uses defval/stream, the Go rendering
// of PCN's definitional variables.
//
// Package am exposes the same functionality in the paper's §4 library-
// procedure shapes (status codes instead of errors); this package is the
// API a Go user would actually program against.
package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/arraymgr"
	"repro/internal/darray"
	"repro/internal/dcall"
	"repro/internal/grid"
	"repro/internal/msg"
	"repro/internal/vp"
)

// StatusError wraps a non-OK array-manager or distributed-call status.
type StatusError struct {
	Op     string
	Status arraymgr.Status
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("core: %s: %v", e.Op, e.Status)
}

// Is makes errors.Is(err, ErrNotFound)-style checks work.
func (e *StatusError) Is(target error) bool {
	t, ok := target.(*StatusError)
	return ok && t.Status == e.Status && (t.Op == "" || t.Op == e.Op)
}

// Unwrap chains the router-layer sentinel behind each transport-failure
// status, so errors.Is(err, msg.ErrTimeout / msg.ErrProcessorDown /
// msg.ErrClosed) works end to end through the am/core surface — callers
// probing for the underlying condition need not know the status
// vocabulary.
func (e *StatusError) Unwrap() error {
	switch e.Status {
	case arraymgr.StatusTimeout:
		return msg.ErrTimeout
	case arraymgr.StatusDown:
		return msg.ErrProcessorDown
	case arraymgr.StatusClosed:
		return msg.ErrClosed
	}
	return nil
}

// Sentinel errors for the failure statuses.
var (
	ErrInvalid  = &StatusError{Status: arraymgr.StatusInvalid}
	ErrNotFound = &StatusError{Status: arraymgr.StatusNotFound}
	ErrSystem   = &StatusError{Status: arraymgr.StatusError}
	// ErrTimeout: a peer did not answer within the installed
	// CallPolicy's retry budget.
	ErrTimeout = &StatusError{Status: arraymgr.StatusTimeout}
	// ErrDown: a peer the operation needed has been killed.
	ErrDown = &StatusError{Status: arraymgr.StatusDown}
	// ErrClosed: the machine was shut down mid-operation.
	ErrClosed = &StatusError{Status: arraymgr.StatusClosed}
)

func statusErr(op string, st arraymgr.Status) error {
	if st == arraymgr.StatusOK {
		return nil
	}
	return &StatusError{Op: op, Status: st}
}

// Machine is an integrated task/data-parallel machine of P virtual
// processors with a running array manager and distributed-call runtime.
type Machine struct {
	VM *vp.Machine
	AM *arraymgr.Manager
	RT *dcall.Runtime
}

// Option configures machine boot.
type Option func(*bootConfig)

type bootConfig struct {
	routerSetup func(*msg.Router)
}

// WithRouterSetup runs f on the freshly built router before the array
// manager and distributed-call runtime boot — the hook a transport
// harness uses to install msg.SetTransport, so the servers start on
// exactly the processors this OS process hosts.
func WithRouterSetup(f func(*msg.Router)) Option {
	return func(c *bootConfig) { c.routerSetup = f }
}

// New boots a machine with p virtual processors: the equivalent of starting
// PCN with the array manager loaded on every processor (§B.3).
func New(p int, opts ...Option) *Machine {
	var cfg bootConfig
	for _, o := range opts {
		o(&cfg)
	}
	vm := vp.NewMachine(p)
	if cfg.routerSetup != nil {
		cfg.routerSetup(vm.Router())
	}
	am := arraymgr.New(vm)
	rt := dcall.NewRuntime(vm, am)
	return &Machine{VM: vm, AM: am, RT: rt}
}

// Close shuts the machine down, releasing all blocked processes.
func (m *Machine) Close() { m.VM.Shutdown() }

// SetCallPolicy installs (or, with nil, removes) the array manager's
// timeout/retry policy. Install one — alongside any Router fault plan —
// before traffic starts; without it, operations against an unreliable
// or partially dead machine block instead of failing with ErrTimeout /
// ErrDown.
func (m *Machine) SetCallPolicy(p *arraymgr.CallPolicy) { m.AM.SetCallPolicy(p) }

// Kill marks processor proc dead mid-call: its mailbox discards traffic
// and in-flight operations that need it fail with ErrDown/ErrTimeout
// under the installed CallPolicy instead of hanging.
func (m *Machine) Kill(proc int) error { return m.VM.Router().KillProcessor(proc) }

// StartMembership boots a heartbeat membership monitor on processor home
// and wires it into the array manager, so coordinators fail fast against
// peers the monitor has declared dead. The returned monitor exposes
// Alive/Suspect/State/Watch/Stats; Stop it before Close for a quiet
// shutdown. A zero config is valid (1ms period, 3×/8× suspect/dead
// thresholds).
func (m *Machine) StartMembership(cfg msg.MembershipConfig) (*msg.Membership, error) {
	mem, err := msg.NewMembership(m.VM.Router(), cfg)
	if err != nil {
		return nil, err
	}
	m.AM.UseMembership(mem)
	return mem, nil
}

// RecoverArray promotes buddy copies to primaries for every dead owner
// of the array (see ArraySpec.Replicas). Data-plane operations replay
// through this transparently under a CallPolicy; it is exported for
// explicit repair after out-of-band kills. ErrDown means some section
// lost its primary and every buddy — Checkpoint/Restore territory.
func (m *Machine) RecoverArray(a *Array) error {
	return statusErr("recover_array", m.AM.RecoverArray(a.onProc, a.id))
}

// Checkpoint drains the array into a self-contained image that survives
// any number of subsequent kills — the recovery path for arrays created
// without replicas.
func (m *Machine) Checkpoint(a *Array) (*arraymgr.CheckpointImage, error) {
	img, st := m.AM.Checkpoint(a.onProc, a.id)
	return img, statusErr("checkpoint", st)
}

// Restore recreates an array from a checkpoint image on procs (nil: the
// image's processors that are still alive) and returns a fresh handle;
// the dead array's handle stays dead.
func (m *Machine) Restore(img *arraymgr.CheckpointImage, procs []int) (*Array, error) {
	// Coordinate from a live processor: the kill that motivated the
	// restore may well have taken processor 0.
	router := m.VM.Router()
	onProc := 0
	for p := 0; p < m.P(); p++ {
		if !router.Down(p) {
			onProc = p
			break
		}
	}
	id, st := m.AM.Restore(onProc, img, procs)
	if st != arraymgr.StatusOK {
		return nil, statusErr("restore", st)
	}
	return &Array{m: m, id: id, onProc: onProc}, nil
}

// RecoveryStats returns the array manager's recovery-plane counters
// (mirrors, promotions, replays, checkpoint bytes).
func (m *Machine) RecoveryStats() arraymgr.RecoveryStats { return m.AM.RecoveryStats() }

// P returns the number of virtual processors.
func (m *Machine) P() int { return m.VM.P() }

// AllProcs returns processor numbers 0..P-1.
func (m *Machine) AllProcs() []int { return m.VM.AllProcs() }

// Procs returns the patterned processor array {first, first+stride, ...}
// of length count (am_util_node_array, §C.2).
func (m *Machine) Procs(first, stride, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = first + i*stride
	}
	return out
}

// Go spawns a task-parallel process on a processor; Wait joins all such
// processes.
func (m *Machine) Go(proc int, f func(proc int)) { m.VM.Go(proc, f) }

// Wait blocks until all processes started with Go have terminated.
func (m *Machine) Wait() { m.VM.Wait() }

// ArraySpec describes a distributed array to create. Zero values choose
// the defaults noted on each field.
//
// Distrib accepts the full decomposition vocabulary of the distribution
// layer: grid.BlockDefault/BlockOf/NoDecomp (the paper's block, block(N)
// and *), plus grid.CyclicDefault/CyclicOf and
// grid.BlockCyclicOf/BlockCyclicOfN for cyclic and block-cyclic layouts
// (load-balanced LU-style workloads). Dimensions need not divide evenly;
// trailing blocks may be short. Nonzero Borders require an exactly even
// block decomposition — halo exchange assumes full-size, index-adjacent
// interiors — at creation and at Verify alike.
type ArraySpec struct {
	Type     darray.ElemType     // default Double
	Dims     []int               // required
	Procs    []int               // default: all processors
	Distrib  []grid.Decomp       // default: block in every dimension
	Borders  arraymgr.BorderSpec // default: no borders
	Indexing grid.Indexing       // default: row-major
	OnProc   int                 // processor making the request; default 0
	// Replicas is the number of buddy copies each grid section keeps on
	// other owners (0 = none). Every write is mirrored to the buddies,
	// and after a fail-stop kill the machine promotes a buddy to primary
	// (RecoverArray / transparent replay) instead of losing the section.
	Replicas int
}

// Array is a handle to a distributed array, carrying its globally unique
// ID. All methods operate through the array manager, preserving the
// global view of §3.2.1.5.
type Array struct {
	m  *Machine
	id darray.ID
	// onProc is the processor used for global operations (the creator).
	onProc int
}

// NewArray creates a distributed array (am_user_create_array).
func (m *Machine) NewArray(spec ArraySpec) (*Array, error) {
	procs := spec.Procs
	if procs == nil {
		procs = m.AllProcs()
	}
	distrib := spec.Distrib
	if distrib == nil {
		distrib = make([]grid.Decomp, len(spec.Dims))
		for i := range distrib {
			distrib[i] = grid.BlockDefault()
		}
	}
	borders := spec.Borders
	if borders == nil {
		borders = arraymgr.NoBorderSpec{}
	}
	id, st := m.AM.CreateArray(spec.OnProc, arraymgr.CreateSpec{
		Type: spec.Type, Dims: spec.Dims, Procs: procs,
		Distrib: distrib, Borders: borders, Indexing: spec.Indexing,
		Replicas: spec.Replicas,
	})
	if st != arraymgr.StatusOK {
		return nil, statusErr("create_array", st)
	}
	return &Array{m: m, id: id, onProc: spec.OnProc}, nil
}

// ID returns the array's globally unique identifier.
func (a *Array) ID() darray.ID { return a.id }

// Param returns the distributed-call parameter passing this array's local
// sections ({"local", ArrayID} in the paper's syntax).
func (a *Array) Param() dcall.Param { return dcall.Local(a.id) }

// Read reads one element by global indices (am_user_read_element).
func (a *Array) Read(idx ...int) (float64, error) {
	v, st := a.m.AM.ReadElement(a.onProc, a.id, idx)
	return v, statusErr("read_element", st)
}

// Write writes one element by global indices (am_user_write_element).
func (a *Array) Write(v float64, idx ...int) error {
	return statusErr("write_element", a.m.AM.WriteElement(a.onProc, a.id, idx, v))
}

// ReadOn / WriteOn perform the operation from a specific processor
// (identical results on any processor holding a section or the creator).
func (a *Array) ReadOn(proc int, idx ...int) (float64, error) {
	v, st := a.m.AM.ReadElement(proc, a.id, idx)
	return v, statusErr("read_element", st)
}

// WriteOn writes one element from a specific processor.
func (a *Array) WriteOn(proc int, v float64, idx ...int) error {
	return statusErr("write_element", a.m.AM.WriteElement(proc, a.id, idx, v))
}

// Free deletes the array (am_user_free_array); subsequent operations fail
// with ErrNotFound.
func (a *Array) Free() error {
	return statusErr("free_array", a.m.AM.FreeArray(a.onProc, a.id))
}

// Meta returns the array's full metadata.
func (a *Array) Meta() (*darray.Meta, error) {
	meta, st := a.m.AM.Meta(a.onProc, a.id)
	return meta, statusErr("find_info", st)
}

// Verify checks indexing and borders, reallocating local sections with the
// expected borders if they differ (am_user_verify_array).
func (a *Array) Verify(ndims int, borders arraymgr.BorderSpec, ix grid.Indexing) error {
	return statusErr("verify_array", a.m.AM.VerifyArray(a.onProc, a.id, ndims, borders, ix))
}

// ReadBlock reads the global rectangle [lo, hi) (half-open per dimension)
// into a dense buffer linearized row-major over the rectangle
// (am_user_read_block). The transfer is aggregated by the array manager
// into one message per remote owning processor.
func (a *Array) ReadBlock(lo, hi []int) ([]float64, error) {
	vals, st := a.m.AM.ReadBlock(a.onProc, a.id, lo, hi)
	return vals, statusErr("read_block", st)
}

// ReadBlockInto reads the global rectangle [lo, hi) into dst, which must
// hold exactly the rectangle's element count. The buffer is owned by the
// caller throughout and may be reused across calls; when the whole
// rectangle lies on the requesting processor the copy comes straight out
// of section storage with no message and zero heap allocations.
func (a *Array) ReadBlockInto(lo, hi []int, dst []float64) error {
	return statusErr("read_block", a.m.AM.ReadBlockInto(a.onProc, a.id, lo, hi, dst))
}

// WriteBlock writes a dense row-major buffer into the global rectangle
// [lo, hi) (am_user_write_block): straight into section storage when the
// rectangle is wholly local, one concurrent message per remote owning
// processor otherwise. vals is never retained; the caller may reuse it as
// soon as WriteBlock returns.
func (a *Array) WriteBlock(lo, hi []int, vals []float64) error {
	return statusErr("write_block", a.m.AM.WriteBlock(a.onProc, a.id, lo, hi, vals))
}

// ReadBlockStrided reads every step[i]-th element of the global rectangle
// [lo, hi) into a dense buffer packed row-major over the lattice
// (am_user_read_block_strided): one concurrent message per owning
// processor holding a lattice point, however many rows or columns the
// stride selects — the structured companion of GatherElements for
// sub-sampled access (every k-th row: down-sampling, multigrid
// restriction). A unit step in every dimension delegates to the dense
// ReadBlock path.
func (a *Array) ReadBlockStrided(lo, hi, step []int) ([]float64, error) {
	vals, st := a.m.AM.ReadBlockStrided(a.onProc, a.id, lo, hi, step)
	return vals, statusErr("read_block_strided", st)
}

// ReadBlockStridedInto is the buffer-reuse variant of ReadBlockStrided:
// dst must hold exactly the lattice's point count and receives the packed
// data in place. The buffer is owned by the caller throughout; a wholly
// local lattice is copied straight out of section storage with no message
// and zero heap allocations.
func (a *Array) ReadBlockStridedInto(lo, hi, step []int, dst []float64) error {
	return statusErr("read_block_strided", a.m.AM.ReadBlockStridedInto(a.onProc, a.id, lo, hi, step, dst))
}

// WriteBlockStrided writes a dense buffer packed row-major over the
// lattice onto every step[i]-th element of the global rectangle [lo, hi)
// (am_user_write_block_strided). Elements off the lattice are untouched;
// vals is never retained, so the caller may reuse it as soon as the call
// returns.
func (a *Array) WriteBlockStrided(lo, hi, step []int, vals []float64) error {
	return statusErr("write_block_strided", a.m.AM.WriteBlockStrided(a.onProc, a.id, lo, hi, step, vals))
}

// RedistributeFrom copies the global rectangle [lo, hi) of array src onto
// the same rectangle of a (am_user_redistribute) — the two arrays may be
// distributed entirely differently (block↔cyclic↔block-cyclic, uneven
// trailing blocks). Each non-empty src-owner/dst-owner intersection
// travels owner-to-owner in at most one message, with no
// gather-then-scatter bounce through the requesting processor; a
// wholly-local transfer moves section-to-section with no message and zero
// heap allocations.
func (a *Array) RedistributeFrom(src *Array, lo, hi []int) error {
	return statusErr("redistribute", a.m.AM.Redistribute(a.onProc, a.id, src.id, lo, hi))
}

// RedistributeRectFrom is the offset variant of RedistributeFrom: source
// element srcLo+j moves to destination element dstLo+j for every
// componentwise 0 <= j < dims, so a panel may land at a different origin
// in the destination array.
func (a *Array) RedistributeRectFrom(src *Array, dstLo, srcLo, dims []int) error {
	return statusErr("redistribute", a.m.AM.RedistributeRect(a.onProc, a.id, src.id, dstLo, srcLo, dims))
}

// RedistributeStridedFrom copies every step[i]-th element of the global
// rectangle [lo, hi) of src onto the matching lattice of a. A unit step
// in every dimension delegates to the dense path.
func (a *Array) RedistributeStridedFrom(src *Array, lo, hi, step []int) error {
	return statusErr("redistribute", a.m.AM.RedistributeStrided(a.onProc, a.id, src.id, lo, hi, step))
}

// GatherElements reads the elements at the given global index tuples in
// one operation, returning their values in request order
// (am_user_gather_elements). The transfer is split by owning processor —
// one concurrent request per owner — so k scattered elements cost
// O(#owners) messages instead of the k round trips of a Read loop. Read is
// the k=1 degenerate case.
func (a *Array) GatherElements(indices [][]int) ([]float64, error) {
	vals, st := a.m.AM.GatherElements(a.onProc, a.id, indices)
	return vals, statusErr("read_vector", st)
}

// GatherElementsInto is the buffer-reuse variant of GatherElements: dst
// must hold exactly len(indices) elements and receives the values in
// place. The buffer is owned by the caller throughout and may be reused
// across calls.
func (a *Array) GatherElementsInto(indices [][]int, dst []float64) error {
	return statusErr("read_vector", a.m.AM.GatherElementsInto(a.onProc, a.id, indices, dst))
}

// ScatterElements writes vals[i] to the element at indices[i]
// (am_user_scatter_elements), one concurrent request per owning processor.
// A repeated index takes the value at its last occurrence (last writer
// wins), exactly as the equivalent Write loop would leave it. vals is
// never retained; the caller may reuse it as soon as the call returns.
func (a *Array) ScatterElements(indices [][]int, vals []float64) error {
	return statusErr("write_vector", a.m.AM.ScatterElements(a.onProc, a.id, indices, vals))
}

// blockBufs pools dense rectangle buffers for FillBlock/Fill, which would
// otherwise allocate a rectangle-sized buffer per call. Safe because
// WriteBlock never retains its argument.
var blockBufs = sync.Pool{New: func() any { return new([]float64) }}

// FillBlock writes f(idx) to every element of the global rectangle
// [lo, hi) through the bulk path. The index tuple passed to f is reused
// between calls; f must not retain it.
func (a *Array) FillBlock(lo, hi []int, f func(idx []int) float64) error {
	meta, err := a.Meta()
	if err != nil {
		return err
	}
	return a.fillBlock(meta, lo, hi, f)
}

func (a *Array) fillBlock(meta *darray.Meta, lo, hi []int, f func(idx []int) float64) error {
	if err := grid.CheckRect(lo, hi, meta.Dims); err != nil {
		return statusErr("write_block", arraymgr.StatusInvalid)
	}
	n := grid.RectSize(lo, hi)
	bp := blockBufs.Get().(*[]float64)
	if cap(*bp) < n {
		*bp = make([]float64, n)
	}
	vals := (*bp)[:n]
	_ = grid.ForEachRect(lo, hi, func(idx []int, k int) error {
		vals[k] = f(idx)
		return nil
	})
	err := a.WriteBlock(lo, hi, vals)
	blockBufs.Put(bp)
	return err
}

// wholeRect returns the rectangle covering the full global index space.
func wholeRect(meta *darray.Meta) (lo, hi []int) {
	return make([]int, meta.NDims()), append([]int(nil), meta.Dims...)
}

// Fill writes f(idx) to every element, iterating the global index space in
// row-major order: FillBlock over the whole array, one bulk transfer per
// owning processor instead of one message per element.
func (a *Array) Fill(f func(idx []int) float64) error {
	meta, err := a.Meta()
	if err != nil {
		return err
	}
	lo, hi := wholeRect(meta)
	return a.fillBlock(meta, lo, hi, f)
}

// Snapshot reads the whole array into a dense row-major []float64:
// ReadBlock over the whole array, one bulk transfer per owning processor.
func (a *Array) Snapshot() ([]float64, error) {
	meta, err := a.Meta()
	if err != nil {
		return nil, err
	}
	lo, hi := wholeRect(meta)
	return a.ReadBlock(lo, hi)
}

// Register adds a named data-parallel program to the machine's registry
// (the analogue of linking data-parallel object code, §B.2).
func (m *Machine) Register(name string, body dcall.Program) error {
	return m.RT.Register(dcall.Registered{Name: name, Body: body})
}

// RegisterWithBorders registers a program together with its border
// callback (the Program_ routine of the foreign_borders protocol).
func (m *Machine) RegisterWithBorders(name string, body dcall.Program, borders dcall.BorderFn) error {
	return m.RT.Register(dcall.Registered{Name: name, Body: body, Borders: borders})
}

// Call makes a distributed call to a registered program on the given
// processors from processor 0 and converts the merged status to an error.
func (m *Machine) Call(procs []int, program string, params ...dcall.Param) error {
	return callStatusErr(program, m.RT.Call(0, procs, program, params))
}

// CallOn is Call from an explicit calling processor.
func (m *Machine) CallOn(caller int, procs []int, program string, params ...dcall.Param) error {
	return callStatusErr(program, m.RT.Call(caller, procs, program, params))
}

// CallFn makes a distributed call to an anonymous program body.
func (m *Machine) CallFn(procs []int, body dcall.Program, params ...dcall.Param) error {
	return callStatusErr("(fn)", m.RT.CallFn(0, procs, body, params))
}

// CallStatus is Call returning the raw merged status (needed when the
// called program uses the status variable to return a value rather than to
// signal failure).
func (m *Machine) CallStatus(procs []int, program string, params ...dcall.Param) int {
	return m.RT.Call(0, procs, program, params)
}

// CallFnStatus is CallFn returning the raw merged status.
func (m *Machine) CallFnStatus(procs []int, body dcall.Program, params ...dcall.Param) int {
	return m.RT.CallFn(0, procs, body, params)
}

func callStatusErr(program string, st int) error {
	if st == dcall.StatusOK {
		return nil
	}
	if st >= dcall.StatusInvalid && st <= int(arraymgr.StatusDown) {
		return fmt.Errorf("core: distributed call %s: %w", program, statusErr("distributed_call", arraymgr.Status(st)))
	}
	return fmt.Errorf("core: distributed call %s: status %d", program, st)
}

// IsStatus reports whether err carries the given status code.
func IsStatus(err error, st arraymgr.Status) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == st
}

// ForeignBordersOf returns the BorderSpec that defers border sizes to the
// named registered program's border callback for the given parameter
// number — the paper's {"foreign_borders", Program, Parm_num} option.
func ForeignBordersOf(program string, parmNum int) arraymgr.BorderSpec {
	return arraymgr.ForeignBorders{Program: program, ParmNum: parmNum}
}
