package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/compose"
	"repro/internal/dcall"
	"repro/internal/defval"
	"repro/internal/spmd"
)

func TestForEachElementVisitsAllOnce(t *testing.T) {
	m := newMachine(t, 4)
	a, err := m.NewArray(ArraySpec{Dims: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	var visits atomic.Int64
	if err := m.ForEachElement(a, func(m *Machine, idx []int, get func() (float64, error), set func(float64) error) error {
		visits.Add(1)
		return set(float64(10*idx[0] + idx[1]))
	}); err != nil {
		t.Fatal(err)
	}
	if visits.Load() != 16 {
		t.Fatalf("visited %d of 16 elements", visits.Load())
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if snap[i*4+j] != float64(10*i+j) {
				t.Fatalf("element (%d,%d) = %v", i, j, snap[i*4+j])
			}
		}
	}
}

// Each element task may itself be a multi-process task-parallel program:
// here each spawns two processes synchronising through a definitional
// variable, the §2.2 "each copy ... can consist of multiple processes".
func TestElementTasksAreTaskParallel(t *testing.T) {
	m := newMachine(t, 2)
	a, err := m.NewArray(ArraySpec{Dims: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fill(func(idx []int) float64 { return float64(idx[0]) }); err != nil {
		t.Fatal(err)
	}
	if err := m.ForEachElement(a, func(m *Machine, idx []int, get func() (float64, error), set func(float64) error) error {
		doubled := defval.New[float64]()
		var setErr error
		compose.Par(
			func() { // producer process
				v, err := get()
				if err != nil {
					doubled.MustDefine(0)
					setErr = err
					return
				}
				doubled.MustDefine(2 * v)
			},
			func() { // consumer process
				setErr = set(doubled.Value() + 1)
			},
		)
		return setErr
	}); err != nil {
		t.Fatal(err)
	}
	snap, _ := a.Snapshot()
	for i, v := range snap {
		if v != float64(2*i+1) {
			t.Fatalf("element %d = %v, want %d", i, v, 2*i+1)
		}
	}
}

func TestForEachElementPropagatesErrors(t *testing.T) {
	m := newMachine(t, 2)
	a, err := m.NewArray(ArraySpec{Dims: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = m.ForEachElement(a, func(m *Machine, idx []int, get func() (float64, error), set func(float64) error) error {
		if idx[0] == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachElementFreedArray(t *testing.T) {
	m := newMachine(t, 2)
	a, err := m.NewArray(ArraySpec{Dims: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if err := m.ForEachElement(a, func(*Machine, []int, func() (float64, error), func(float64) error) error {
		return nil
	}); err == nil {
		t.Fatal("freed array must fail")
	}
}

// Element tasks may make distributed calls — full recursion of the two
// models: data-parallel array -> per-element task-parallel program ->
// distributed call.
func TestElementTaskMakesDistributedCall(t *testing.T) {
	m := newMachine(t, 2)
	outer, err := m.NewArray(ArraySpec{Dims: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := m.NewArray(ArraySpec{Dims: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.Fill(func(idx []int) float64 { return float64(idx[0] + 1) }); err != nil {
		t.Fatal(err)
	}
	if err := m.ForEachElement(outer, func(m *Machine, idx []int, get func() (float64, error), set func(float64) error) error {
		// Sum the inner array via a distributed call with a reduction.
		out := defval.New[[]float64]()
		add := func(a, b []float64) []float64 { return []float64{a[0] + b[0]} }
		if err := m.CallFn(m.AllProcs(), func(w *spmd.World, args *dcall.Args) {
			s := 0.0
			for _, v := range args.Section(0).F {
				s += v
			}
			args.Reduction(1)[0] = s
		}, inner.Param(), dcall.Reduce(1, add, out)); err != nil {
			return err
		}
		return set(out.Value()[0] * float64(idx[0]+1))
	}); err != nil {
		t.Fatal(err)
	}
	snap, _ := outer.Snapshot()
	if snap[0] != 3 || snap[1] != 6 {
		t.Fatalf("outer = %v", snap)
	}
}
