package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/arraymgr"
	"repro/internal/msg"
)

// TestSentinelUnwrap pins the static unwrap chain: each transport-
// failure sentinel chains to its router-layer counterpart, and the
// non-transport statuses chain to nothing.
func TestSentinelUnwrap(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{ErrTimeout, msg.ErrTimeout},
		{ErrDown, msg.ErrProcessorDown},
		{ErrClosed, msg.ErrClosed},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("errors.Is(%v, %v) = false", c.err, c.want)
		}
	}
	// Cross-wiring must not match.
	if errors.Is(ErrTimeout, msg.ErrProcessorDown) || errors.Is(ErrDown, msg.ErrClosed) ||
		errors.Is(ErrClosed, msg.ErrTimeout) {
		t.Error("a sentinel unwraps to the wrong router error")
	}
	// Statuses with no router counterpart unwrap to nothing.
	for _, e := range []error{ErrInvalid, ErrNotFound, ErrSystem} {
		for _, target := range []error{msg.ErrTimeout, msg.ErrProcessorDown, msg.ErrClosed} {
			if errors.Is(e, target) {
				t.Errorf("errors.Is(%v, %v) = true", e, target)
			}
		}
	}
}

// TestErrDownRoundTrip drives a real operation into a killed peer and
// checks the error answers both vocabularies: the core sentinel and the
// underlying msg sentinel.
func TestErrDownRoundTrip(t *testing.T) {
	m := New(4)
	defer m.Close()
	m.SetCallPolicy(&arraymgr.CallPolicy{Timeout: 20 * time.Millisecond, Retries: 2})

	a, err := m.NewArray(ArraySpec{Dims: []int{16}})
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	if err := m.Kill(3); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	// Element 15 lives on the killed processor 3.
	_, err = a.Read(15)
	if err == nil {
		t.Fatal("read from killed owner succeeded")
	}
	if !errors.Is(err, ErrDown) {
		t.Fatalf("errors.Is(err, core.ErrDown) = false for %v", err)
	}
	if !errors.Is(err, msg.ErrProcessorDown) {
		t.Fatalf("errors.Is(err, msg.ErrProcessorDown) = false for %v", err)
	}
	if errors.Is(err, msg.ErrTimeout) || errors.Is(err, msg.ErrClosed) {
		t.Fatalf("down error matches an unrelated sentinel: %v", err)
	}
}

// TestErrTimeoutRoundTrip drops every request to one owner so the retry
// budget exhausts, and checks the resulting error matches msg.ErrTimeout
// end to end.
func TestErrTimeoutRoundTrip(t *testing.T) {
	m := New(4)
	defer m.Close()
	// Requests 0 -> 3 always vanish; everything else is reliable.
	m.VM.Router().SetFaultPlan(&msg.FaultPlan{
		Seed:  1,
		Pairs: map[[2]int]msg.FaultRule{{0, 3}: {Drop: 1}},
	})
	m.SetCallPolicy(&arraymgr.CallPolicy{Timeout: 10 * time.Millisecond, Retries: 2})

	a, err := m.NewArray(ArraySpec{Dims: []int{16}})
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	_, err = a.Read(15)
	if err == nil {
		t.Fatal("read across an always-drop link succeeded")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("errors.Is(err, core.ErrTimeout) = false for %v", err)
	}
	if !errors.Is(err, msg.ErrTimeout) {
		t.Fatalf("errors.Is(err, msg.ErrTimeout) = false for %v", err)
	}
	if errors.Is(err, msg.ErrProcessorDown) {
		t.Fatalf("timeout error matches ErrProcessorDown: %v", err)
	}
}

// TestErrClosedRoundTrip shuts the machine down and checks a subsequent
// operation fails with the closed sentinels rather than a generic error.
func TestErrClosedRoundTrip(t *testing.T) {
	m := New(4)
	a, err := m.NewArray(ArraySpec{Dims: []int{16}})
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	m.Close()
	_, err = a.Read(15)
	if err == nil {
		t.Fatal("read on a closed machine succeeded")
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("errors.Is(err, core.ErrClosed) = false for %v", err)
	}
	if !errors.Is(err, msg.ErrClosed) {
		t.Fatalf("errors.Is(err, msg.ErrClosed) = false for %v", err)
	}
}
