// Package defval implements PCN-style definitional (single-assignment)
// variables, the synchronisation primitive of the task-parallel notation in
// Massingill's "Integrating Task and Data Parallelism" (Caltech, 1993).
//
// A definitional variable starts undefined. It may be defined (assigned a
// value) at most once; a second definition is an error. A reader that needs
// the value of an undefined variable suspends until the variable has been
// defined, after which every reader observes the same value. This gives the
// conflict-freedom property the paper relies on (§3.1.1.4): a shared
// single-assignment variable can change state at most once, so concurrent
// readers can never observe conflicting values.
package defval

import (
	"errors"
	"sync"
)

// ErrAlreadyDefined is returned by Define when the variable already has a
// value. PCN treats a second definition of a definition variable as a
// program error; we surface it as an error so callers can decide whether to
// treat it as fatal.
var ErrAlreadyDefined = errors.New("defval: variable already defined")

// Var is a single-assignment variable holding a value of type T.
// The zero value is ready to use (undefined).
type Var[T any] struct {
	mu      sync.Mutex
	done    chan struct{}
	val     T
	defined bool
}

// New returns a fresh undefined variable. Equivalent to &Var[T]{}; provided
// for symmetry with the paper's implicit declaration of definition variables.
func New[T any]() *Var[T] { return &Var[T]{} }

// lazily allocate the broadcast channel.
func (v *Var[T]) doneLocked() chan struct{} {
	if v.done == nil {
		v.done = make(chan struct{})
	}
	return v.done
}

// Define assigns a value to the variable. It returns ErrAlreadyDefined if
// the variable has already been defined (even with an equal value: PCN's
// single-assignment rule is about assignment, not value identity).
func (v *Var[T]) Define(x T) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.defined {
		return ErrAlreadyDefined
	}
	v.val = x
	v.defined = true
	close(v.doneLocked())
	return nil
}

// MustDefine is Define but panics on double definition. Use in program text
// where a second definition indicates a bug in the calling program, matching
// PCN's runtime behaviour.
func (v *Var[T]) MustDefine(x T) {
	if err := v.Define(x); err != nil {
		panic(err)
	}
}

// Value suspends the calling goroutine until the variable is defined and
// then returns its value. Every caller observes the same value.
func (v *Var[T]) Value() T {
	<-v.Defined()
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.val
}

// Try reports the value without suspending: ok is false while the variable
// is undefined.
func (v *Var[T]) Try() (x T, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.val, v.defined
}

// Defined returns a channel that is closed once the variable is defined,
// suitable for use in select statements (the Go analogue of a PCN data
// guard).
func (v *Var[T]) Defined() <-chan struct{} {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.doneLocked()
}

// IsDefined reports whether the variable currently has a value.
func (v *Var[T]) IsDefined() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.defined
}

// Signal is a valueless definitional variable used purely for
// synchronisation, like the paper's Done variables that are "assigned a
// value for synchronization purposes but the particular value is not of
// interest" (the empty list [] in PCN).
type Signal = Var[struct{}]

// NewSignal returns a fresh undefined Signal.
func NewSignal() *Signal { return &Signal{} }

// Fire defines the signal. Firing twice panics, as with any definitional
// variable.
func Fire(s *Signal) { s.MustDefine(struct{}{}) }

// Wait suspends until the signal has been fired.
func Wait(s *Signal) { s.Value() }
