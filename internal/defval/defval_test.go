package defval

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestDefineThenValue(t *testing.T) {
	v := New[int]()
	if err := v.Define(42); err != nil {
		t.Fatalf("Define: %v", err)
	}
	if got := v.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestDoubleDefineFails(t *testing.T) {
	v := New[string]()
	if err := v.Define("a"); err != nil {
		t.Fatalf("first Define: %v", err)
	}
	if err := v.Define("a"); !errors.Is(err, ErrAlreadyDefined) {
		t.Fatalf("second Define err = %v, want ErrAlreadyDefined", err)
	}
	// Value must still be the first definition.
	if got := v.Value(); got != "a" {
		t.Fatalf("Value = %q, want %q", got, "a")
	}
}

func TestMustDefinePanics(t *testing.T) {
	v := New[int]()
	v.MustDefine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second MustDefine")
		}
	}()
	v.MustDefine(2)
}

func TestTryUndefined(t *testing.T) {
	v := New[int]()
	if _, ok := v.Try(); ok {
		t.Fatal("Try on undefined variable reported ok")
	}
	if v.IsDefined() {
		t.Fatal("IsDefined true before Define")
	}
	v.MustDefine(7)
	if x, ok := v.Try(); !ok || x != 7 {
		t.Fatalf("Try = (%d,%v), want (7,true)", x, ok)
	}
	if !v.IsDefined() {
		t.Fatal("IsDefined false after Define")
	}
}

func TestValueSuspendsUntilDefined(t *testing.T) {
	v := New[int]()
	got := make(chan int, 1)
	go func() { got <- v.Value() }()
	// The reader must suspend: nothing should arrive yet.
	select {
	case x := <-got:
		t.Fatalf("Value returned %d before Define", x)
	case <-time.After(20 * time.Millisecond):
	}
	v.MustDefine(99)
	select {
	case x := <-got:
		if x != 99 {
			t.Fatalf("Value = %d, want 99", x)
		}
	case <-time.After(time.Second):
		t.Fatal("reader never woke after Define")
	}
}

func TestAllReadersObserveSameValue(t *testing.T) {
	v := New[int]()
	const readers = 32
	var wg sync.WaitGroup
	results := make([]int, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = v.Value()
		}(i)
	}
	v.MustDefine(5)
	wg.Wait()
	for i, r := range results {
		if r != 5 {
			t.Fatalf("reader %d saw %d, want 5", i, r)
		}
	}
}

// Property (testing/quick): exactly one of n racing definitions succeeds,
// and the observed value is the value of the successful definition.
func TestQuickSingleAssignment(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		v := New[int16]()
		var successes atomic.Int32
		var winner atomic.Int32
		var wg sync.WaitGroup
		for _, x := range vals {
			wg.Add(1)
			go func(x int16) {
				defer wg.Done()
				if v.Define(x) == nil {
					successes.Add(1)
					winner.Store(int32(x))
				}
			}(x)
		}
		wg.Wait()
		return successes.Load() == 1 && v.Value() == int16(winner.Load())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDefinedChannelInSelect(t *testing.T) {
	v := New[int]()
	select {
	case <-v.Defined():
		t.Fatal("Defined channel closed before Define")
	default:
	}
	v.MustDefine(3)
	select {
	case <-v.Defined():
	default:
		t.Fatal("Defined channel not closed after Define")
	}
}

func TestSignal(t *testing.T) {
	s := NewSignal()
	fired := make(chan struct{})
	go func() {
		Wait(s)
		close(fired)
	}()
	select {
	case <-fired:
		t.Fatal("Wait returned before Fire")
	case <-time.After(10 * time.Millisecond):
	}
	Fire(s)
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("Wait never returned after Fire")
	}
}

func TestZeroValueVarUsable(t *testing.T) {
	var v Var[float64]
	go v.MustDefine(2.5)
	if got := v.Value(); got != 2.5 {
		t.Fatalf("Value = %v, want 2.5", got)
	}
}
